// Tree multicast over the interest-sharded fan-out (paper §3.4).
//
// PR 5 made the DC build one sealed frame per interest shard, but it still
// *sent* that frame once per subscriber — at 100k subscribers the DC's egress
// is 100k sends per flush even though only ~8k distinct frames exist. This
// file organises each shard's relay-capable subscribers (wire.Subscribe.Relay
// — edge nodes and group sync points) into subtrees of bounded degree: one
// root plus at most TreeDegree children. The flush sends the sealed frame
// once per subtree root as a wire.TreePush; the root re-fans the same frame
// out to its children and returns one aggregated wire.TreeAck. DC egress
// then scales with the subtree count, not the subscriber count.
//
// Correctness leans entirely on PR 5's cursor machinery:
//
//   - A subtree rides the tree path only when every member shares the same
//     delivery cursor (the steady state — members of one shard advance in
//     lockstep). Any divergence, and the whole tree falls back to the direct
//     per-cursor groups for that flush; cursors re-align at the flush
//     frontier and the next flush rides the tree again.
//   - Cursors are advanced optimistically when the network accepts the
//     TreePush. Every tree send registers a pending receipt *before* the
//     send; the root's TreeAck retires it. A child the root could not reach
//     (TreeAck.Failed), a root without a current child table
//     (TreeAck.Dropped), or a receipt that times out (relay crash) rewinds
//     the affected cursors to the pending's pre-send position — exactly the
//     state a failed direct send would have left — and kicks the shard, so
//     the PR 5 repair frame re-covers them directly. Fault-path overlap is
//     deduplicated by dot downstream, like every other repair.
//   - Child tables are installed by wire.TreeAssign on the same FIFO link as
//     the pushes they govern, re-sent (with a bumped epoch) before the first
//     push after any membership change. A relay holding no table, or one at
//     another epoch, refuses to guess: it applies the frame locally and
//     reports Dropped.
//
// Trees are two-level by design: ack aggregation is a single hop, a relay
// crash affects at most TreeDegree subscribers, and at degree 16 the egress
// reduction already exceeds an order of magnitude on Zipf-shaped interest.
// Deeper trees (relays under relays) are a follow-on.
package dc

import (
	"time"

	"colony/internal/txn"
	"colony/internal/vclock"
	"colony/internal/wire"
)

// treePending is one outstanding TreePush receipt: the cursor range the send
// covered, recorded before the send so an ack (or its absence) can rewind
// precisely. subs and root snapshot the membership the push actually covered
// — rewinds must target those subscriptions, not the tree's current members,
// because a member that leaves the tree between the push and the ack (e.g. a
// signature change moved it to another shard) still owns the optimistically
// advanced cursor. Guarded by the fanout mutex; pendings are FIFO (seq
// order).
type treePending struct {
	seq    uint64
	di, hi int
	gen    uint64
	at     time.Time
	subs   []*subscription
	root   *subscription
}

// pushTree is one multicast subtree of a shard: a relay root plus children,
// all members of the same interest shard. Guarded by the fanout mutex.
type pushTree struct {
	root    *subscription
	members []*subscription // root included
	// epoch versions the child table; bumped whenever the membership (or
	// root) changes, and re-advertised by a TreeAssign before the next push.
	epoch uint64
	// dirty marks that the current membership has not been advertised to the
	// root yet.
	dirty bool
	// seq numbers TreePush frames on this subtree (ack matching).
	seq     uint64
	pending []treePending
	// ver counts mutations that invalidate an in-flight eligibility scan:
	// membership or root changes and member-cursor rewinds (ack failure,
	// sweeper expiry, resume/reconnect), all made under the fanout mutex.
	// planTreeSends snapshots ver, scans member cursors with the mutex
	// released, and registers receipts only for trees whose ver is unchanged
	// — a tree that churned or rewound mid-scan simply falls back to the
	// direct path for that flush. Rewinds racing the window *after*
	// registration are caught per member by subscription.rewinds, which the
	// post-send advance re-checks under outMu.
	ver uint64
}

// childNames returns the member names minus the root — the table a
// TreeAssign advertises.
func (tr *pushTree) childNames() []string {
	names := make([]string, 0, len(tr.members)-1)
	for _, s := range tr.members {
		if s != tr.root {
			names = append(names, s.node)
		}
	}
	return names
}

// attachTreeLocked places a relay-capable subscription into one of the
// shard's subtrees: the first tree with spare degree, or a fresh tree rooted
// at the subscription. Called with the fanout mutex held.
func (f *fanout) attachTreeLocked(sh *pushShard, sub *subscription) {
	for _, tr := range sh.trees {
		if len(tr.members) <= f.d.cfg.TreeDegree {
			tr.members = append(tr.members, sub)
			tr.dirty = true
			tr.ver++
			sub.tree = tr
			return
		}
	}
	tr := &pushTree{root: sub, members: []*subscription{sub}}
	sh.trees = append(sh.trees, tr)
	if sh.treeByRoot == nil {
		sh.treeByRoot = make(map[string]*pushTree)
	}
	sh.treeByRoot[sub.node] = tr
	sub.tree = tr
}

// detachTreeLocked removes a subscription from its subtree, re-rooting or
// dropping the tree as needed. Called with the fanout mutex held.
func (f *fanout) detachTreeLocked(sh *pushShard, sub *subscription) {
	tr := sub.tree
	if tr == nil {
		return
	}
	sub.tree = nil
	tr.ver++
	for i, s := range tr.members {
		if s == sub {
			tr.members = append(tr.members[:i], tr.members[i+1:]...)
			break
		}
	}
	if len(tr.members) == 0 {
		for i, t := range sh.trees {
			if t == tr {
				sh.trees = append(sh.trees[:i], sh.trees[i+1:]...)
				break
			}
		}
		delete(sh.treeByRoot, tr.root.node)
		return
	}
	if tr.root == sub {
		delete(sh.treeByRoot, sub.node)
		tr.root = tr.members[0]
		sh.treeByRoot[tr.root.node] = tr
		// The old root's pendings will never be acked; expire them now so
		// the sweeper does not wait out the timeout for a known-gone relay.
		f.expirePendingsLocked(sh, tr, tr.pending)
		tr.pending = tr.pending[:0]
	}
	tr.dirty = true
}

// rotateRootLocked demotes a misbehaving root (failed send, ack timeout) and
// promotes another member. With a single member there is nothing to rotate —
// the tree is below the 2-member send threshold anyway. Called with the
// fanout mutex held.
func (f *fanout) rotateRootLocked(sh *pushShard, tr *pushTree) {
	for _, s := range tr.members {
		if s != tr.root {
			delete(sh.treeByRoot, tr.root.node)
			tr.root = s
			sh.treeByRoot[s.node] = tr
			break
		}
	}
	tr.dirty = true
	tr.ver++
}

// expirePendingsLocked treats every given pending receipt as failed: the
// members each send covered (the pending's snapshot — membership may have
// churned since) are rewound to that send's pre-send cursor, and the shard is
// kicked so the next flush repairs them directly. Pendings are FIFO, so the
// `>` guard lands every member on the lowest cursor among the sends that
// covered it. Called with the fanout mutex held.
func (f *fanout) expirePendingsLocked(sh *pushShard, tr *pushTree, expired []treePending) {
	if len(expired) == 0 {
		return
	}
	f.d.obsTreeRepairs.Add(int64(len(expired)))
	tr.ver++ // cursors rewind below: invalidate any in-flight scan or advance
	for _, p := range expired {
		for _, s := range p.subs {
			s.outMu.Lock()
			if s.fanGen == p.gen {
				if s.deliveredIdx > p.di {
					s.deliveredIdx = p.di
				}
				s.rewinds++
			}
			s.outMu.Unlock()
			if s.shard != nil && s.shard != sh {
				// The member moved shards since the push: the repair must
				// flush where it lives now.
				f.kickLocked(s.shard)
			}
		}
	}
	f.kickLocked(sh)
}

// kickLocked queues a zero-width segment so the next flush of the shard
// repairs any stale member cursors. Called with the fanout mutex held.
func (f *fanout) kickLocked(sh *pushShard) {
	sh.segs = append(sh.segs, pushSeg{lo: f.idx, hi: f.idx, stable: f.stable})
	f.dirtyLocked(sh)
}

// treeSend is one planned TreePush: the subtree, the cursor group it serves,
// and the (optional) assign that must precede it on the root's FIFO link.
type treeSend struct {
	tr     *pushTree
	root   string
	subs   []*subscription
	di     int
	seq    uint64
	epoch  uint64
	assign *wire.TreeAssign
	// rew[i] is subs[i].rewinds at the eligibility scan; the post-send
	// optimistic advance re-checks it under each member's outMu and backs
	// off (per subscriber) when a rewind raced the send.
	rew []uint64
}

// planTreeSends decides which subtrees ride the tree path this flush. A
// subtree qualifies when it has at least two members and every member is at
// the same delivery cursor with work to do; the receipt is registered
// *before* the send, so a racing ack can never arrive unmatched (a send
// that subsequently fails takes its receipt back via dropPending). Members
// of qualifying trees are returned in covered and skipped by the direct
// path.
//
// The member-cursor scan is the bulk of the work — one outMu acquisition per
// subscriber — and at 100k subscribers holding the fanout mutex across it
// would stall every commit-path segment enqueue for milliseconds per flush
// (the direct path's cursor grouping runs without it). So the scan runs in
// three phases: snapshot the candidate trees under f.mu, check eligibility
// with f.mu released, then re-take f.mu to register receipts — guarded by
// each tree's ver counter, which every membership change and cursor rewind
// bumps under f.mu. A tree that mutated mid-scan is skipped and its members
// fall through to the direct path for this flush.
func (d *DC) planTreeSends(sh *pushShard, hi int, stable vclock.Vector, gen uint64) (plans []treeSend, covered map[*subscription]bool) {
	f := d.fan

	// Phase 1: snapshot candidates under f.mu. Member slices are copied so
	// the unlocked scan never observes a concurrent splice.
	type candidate struct {
		tr      *pushTree
		ver     uint64
		members []*subscription
	}
	f.mu.Lock()
	cands := make([]candidate, 0, len(sh.trees))
	for _, tr := range sh.trees {
		if len(tr.members) < 2 {
			continue
		}
		cands = append(cands, candidate{
			tr:      tr,
			ver:     tr.ver,
			members: append([]*subscription(nil), tr.members...),
		})
	}
	f.mu.Unlock()
	if len(cands) == 0 {
		return nil, nil
	}

	// Phase 2: eligibility scan without f.mu. Each member's rewind counter
	// is snapshotted with its cursor so the post-send advance can detect a
	// rewind that races the send.
	dis := make([]int, len(cands))
	rews := make([][]uint64, len(cands))
	eligible := make([]candidate, 0, len(cands))
	for _, c := range cands {
		di, ok := -1, true
		rew := make([]uint64, len(c.members))
		for j, sub := range c.members {
			sub.outMu.Lock()
			genOK := sub.fanGen == gen
			sdi := sub.deliveredIdx
			rew[j] = sub.rewinds
			upToDate := sdi >= hi && stable.LEQ(sub.sentStable)
			sub.outMu.Unlock()
			if !genOK || upToDate {
				ok = false
				break
			}
			if sdi > hi {
				sdi = hi
			}
			if di < 0 {
				di = sdi
			} else if di != sdi {
				ok = false
				break
			}
		}
		if !ok || di < 0 {
			continue
		}
		dis[len(eligible)] = di
		rews[len(eligible)] = rew
		eligible = append(eligible, c)
	}
	if len(eligible) == 0 {
		return nil, nil
	}

	// Phase 3: register receipts under f.mu for trees whose ver is
	// unchanged — no membership change, no rewind since the snapshot, so
	// the scanned cursors are still authoritative (flushes of one shard
	// never run concurrently, and every other cursor writer bumps ver).
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, c := range eligible {
		tr := c.tr
		if tr.ver != c.ver {
			continue
		}
		plan := treeSend{
			tr:   tr,
			root: tr.root.node,
			subs: c.members,
			di:   dis[i],
			rew:  rews[i],
		}
		if tr.dirty {
			tr.epoch++
			tr.dirty = false
			plan.assign = &wire.TreeAssign{
				From:     d.cfg.Name,
				Shard:    sh.id,
				Epoch:    tr.epoch,
				Children: tr.childNames(),
			}
		}
		tr.seq++
		plan.seq, plan.epoch = tr.seq, tr.epoch
		tr.pending = append(tr.pending, treePending{
			seq: plan.seq, di: plan.di, hi: hi, gen: gen, at: now,
			subs: c.members, root: tr.root,
		})
		if covered == nil {
			covered = make(map[*subscription]bool, len(plan.subs))
		}
		for _, s := range plan.subs {
			covered[s] = true
		}
		plans = append(plans, plan)
	}
	return plans, covered
}

// sendTrees executes one flush's planned subtree sends as a batch: the
// sealed frame is built once per distinct cursor (in steady state every tree
// shares one), the (rare) TreeAssigns go out first on each root's FIFO link,
// and every TreePush rides a single transport SendEach pass — at 100k
// subscribers a flush covers thousands of subtrees, and per-send scheduling
// overhead is exactly what the tree path exists to amortise. Cursor advances
// are optimistic; the receipts planTreeSends registered (and the sweeper
// behind them) rewind any member a root fails to serve. A refused push
// demotes its root so the next flush tries another relay.
func (d *DC) sendTrees(sh *pushShard, plans []treeSend, segs []pushSeg, starts []int, filtered []*txn.Transaction, stable vclock.Vector, hi int, gen uint64) {
	type built struct {
		frame wire.PushFrame
		ok    bool
	}
	frames := make(map[int]built, 1)
	roots := make([]string, 0, len(plans))
	msgs := make([]any, 0, len(plans))
	live := make([]treeSend, 0, len(plans))
	for _, plan := range plans {
		fr, seen := frames[plan.di]
		if !seen {
			fr.frame, fr.ok = d.shardFrameFor(sh, segs, starts, filtered, stable, plan.di, gen)
			frames[plan.di] = fr
			if fr.ok {
				d.obsFramesBuilt.Inc()
				d.obsPushBatch.Observe(int64(len(fr.frame.Txs)))
			}
		}
		if !fr.ok {
			// Log generation changed under us; the rescan re-covers everyone.
			d.dropPending(plan, plan.assign != nil)
			continue
		}
		if plan.assign != nil {
			if err := d.node.Send(plan.root, *plan.assign); err != nil {
				// Without a current child table the push would come back
				// Dropped anyway: skip the tree this flush. Cursors stay put,
				// so a later flush repairs the members (or retries the
				// assign).
				d.dropPending(plan, true)
				continue
			}
			d.obsTreeAssigns.Inc()
			d.obsPushSends.Inc()
		}
		d.obsFramesShared.Add(int64(len(plan.subs) - 1))
		roots = append(roots, plan.root)
		msgs = append(msgs, wire.SealTreeFrame(d.cfg.Name, sh.id, plan.epoch, plan.seq, fr.frame.Txs, fr.frame.Stable))
		live = append(live, plan)
	}
	if len(live) == 0 {
		return
	}
	errs := d.node.SendEach(roots, msgs)
	for i, plan := range live {
		if errs != nil && errs[i] != nil {
			d.dropPending(plan, false)
			d.fan.mu.Lock()
			d.fan.rotateRootLocked(sh, plan.tr)
			d.fan.mu.Unlock()
			continue
		}
		d.obsPushSends.Inc()
		// Advance optimistically — but only members whose rewind counter
		// still matches the eligibility scan: a rewind that fired since
		// (TreeAck failure for an earlier pending, sweeper expiry,
		// resume/reconnect) bumped it, and overwriting its cursor with hi
		// would permanently skip the replay gap it requested. The check and
		// the advance share the member's outMu, so they are atomic against
		// every rewinder; no hot-path fanout-mutex acquisition. Backing off
		// is always safe: the cursor stays put, the rewinder's kick
		// re-covers the member, and the overlap deduplicates by dot.
		for j, sub := range plan.subs {
			sub.outMu.Lock()
			if sub.fanGen == gen && sub.rewinds == plan.rew[j] {
				if hi > sub.deliveredIdx {
					sub.deliveredIdx = hi
				}
				if sub.sentStable.LEQ(stable) {
					sub.sentStable = stable
				}
			}
			sub.outMu.Unlock()
		}
	}
}

// dropPending withdraws a receipt whose send never made it onto the wire
// (frame build raced a log rebuild, or the transport refused the frame), and
// undoes the assign's epoch advertisement when the assign itself failed.
func (d *DC) dropPending(plan treeSend, reassign bool) {
	f := d.fan
	f.mu.Lock()
	tr := plan.tr
	for i := range tr.pending {
		if tr.pending[i].seq == plan.seq {
			tr.pending = append(tr.pending[:i], tr.pending[i+1:]...)
			break
		}
	}
	if reassign {
		tr.dirty = true
	}
	f.mu.Unlock()
}

// handleTreeAck applies a subtree root's aggregated forwarding receipt: the
// acked sequence retires every receipt at or below it (the root's link is
// FIFO), and any child the root could not serve — named in Failed, or all of
// them when the root held no current child table (Dropped) — is rewound to
// the receipt's pre-send cursor so the next flush repairs it directly.
func (d *DC) handleTreeAck(m wire.TreeAck) {
	f := d.fan
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := f.byID[m.Shard]
	if sh == nil {
		return
	}
	tr := sh.treeByRoot[m.Node]
	if tr == nil {
		// Unknown or since-demoted root; its receipts were already expired.
		return
	}
	var matched *treePending
	keep := tr.pending[:0]
	for i := range tr.pending {
		p := tr.pending[i]
		if p.seq > m.Seq {
			keep = append(keep, p)
			continue
		}
		if p.seq == m.Seq {
			pm := p
			matched = &pm
		}
	}
	tr.pending = keep
	if matched == nil {
		return
	}
	// Rewind against the membership the pending actually covered, not the
	// tree's current members: a child that left the tree (or shard) after the
	// push still owns the optimistically advanced cursor and needs the
	// repair.
	var rewind []*subscription
	if m.Dropped {
		// The root never forwarded: its child table was missing or stale.
		// Re-advertise and re-cover every child.
		tr.dirty = true
		for _, s := range matched.subs {
			if s != matched.root {
				rewind = append(rewind, s)
			}
		}
	} else if len(m.Failed) > 0 {
		failed := make(map[string]bool, len(m.Failed))
		for _, name := range m.Failed {
			failed[name] = true
		}
		for _, s := range matched.subs {
			if failed[s.node] {
				rewind = append(rewind, s)
			}
		}
	}
	if len(rewind) == 0 {
		return
	}
	d.obsTreeRepairs.Inc()
	tr.ver++ // cursors rewind below: invalidate any in-flight scan or advance
	for _, s := range rewind {
		s.outMu.Lock()
		if s.fanGen == matched.gen {
			if s.deliveredIdx > matched.di {
				s.deliveredIdx = matched.di
			}
			// Bumped even when the cursor had not advanced yet (the ack beat
			// the optimistic advance): the pending advance must still back
			// off, or it would mark the failed range delivered.
			s.rewinds++
		}
		s.outMu.Unlock()
		if s.shard != nil && s.shard != sh {
			// The member moved shards since the push: the repair must flush
			// where it lives now.
			f.kickLocked(s.shard)
		}
	}
	f.kickLocked(sh)
}

// runTreeSweeper expires TreePush receipts that were never acked: the root
// crashed (or is partitioned) after the network accepted the frame, so no
// TreeAck will ever arrive. Every member the orphaned sends covered is
// rewound and the tree is re-rooted — the surviving subscribers converge via
// the direct repair path even though the relay died holding their frames.
func (d *DC) runTreeSweeper() {
	defer d.pipeWG.Done()
	f := d.fan
	timeout := d.cfg.TreeAckTimeout
	tick := time.NewTicker(timeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-d.pipeStop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-timeout)
		f.mu.Lock()
		if f.stopped {
			f.mu.Unlock()
			return
		}
		for _, sh := range f.shards {
			for _, tr := range sh.trees {
				n := 0
				for n < len(tr.pending) && tr.pending[n].at.Before(cutoff) {
					n++
				}
				if n == 0 {
					continue
				}
				expired := append([]treePending(nil), tr.pending[:n]...)
				tr.pending = append(tr.pending[:0], tr.pending[n:]...)
				f.expirePendingsLocked(sh, tr, expired)
				f.rotateRootLocked(sh, tr)
			}
		}
		f.mu.Unlock()
	}
}

// TreeTopology reports the current multicast forest as root → children node
// names (tests and debugging). Trees below the two-member send threshold are
// included; subscribers outside any tree are not.
func (d *DC) TreeTopology() map[string][]string {
	if d.fan == nil {
		return nil
	}
	out := make(map[string][]string)
	d.fan.mu.Lock()
	for _, sh := range d.fan.shards {
		for _, tr := range sh.trees {
			out[tr.root.node] = append(out[tr.root.node], tr.childNames()...)
		}
	}
	d.fan.mu.Unlock()
	return out
}
