// Package dc implements a Colony data centre (paper §3.4, §3.6, §6.3).
//
// A DC is an SI zone: internally it runs transactions across multiple
// sharded servers under ClockSI, and externally it behaves as a single
// sequential node whose commits are numbered by one component of the global
// vector timestamp. DCs replicate to each other over a full mesh and act as
// tree roots for edge nodes: they accept asynchronously committed edge
// transactions, assign them concrete commit timestamps, and push K-stable
// updates back down to subscribed edge caches.
package dc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"colony/internal/clocksi"
	"colony/internal/crdt"
	"colony/internal/obs"
	"colony/internal/replication"
	"colony/internal/store"
	"colony/internal/transport"
	"colony/internal/txn"
	"colony/internal/vclock"
	"colony/internal/wal"
	"colony/internal/wire"
)

// Errors returned by the DC API.
var (
	ErrIncompatible = errors.New("dc: snapshot depends on transactions this DC has not seen")
	ErrClosed       = errors.New("dc: closed")
)

// Config configures one DC.
type Config struct {
	// Index is the DC's position in vector timestamps.
	Index int
	// Name is the DC's node name on the network.
	Name string
	// NumDCs is the total number of DCs in the system.
	NumDCs int
	// Shards is the number of storage servers (default 4).
	Shards int
	// VNodes is the consistent-hashing virtual node count (default 64).
	VNodes int
	// K is the K-stability visibility threshold for edge nodes (default 1;
	// the paper's experiments use 2 with 3 DCs).
	K int
	// Heartbeat is the state-vector gossip period; 0 disables heartbeats
	// (tests drive gossip through traffic instead).
	Heartbeat time.Duration
	// CompactEvery triggers automatic base-version advancement (journal
	// truncation, paper §4.1) on the heartbeat worker; 0 disables.
	CompactEvery time.Duration
	// AutoAdvanceThreshold additionally lets each storage shard advance its
	// own base versions in the background whenever an object's journal
	// outgrows this many entries, folding up to the DC's K-stable cut. It
	// bounds journal growth under sustained write load between CompactEvery
	// ticks (and without them). 0 disables.
	AutoAdvanceThreshold int
	// DataDir enables persistence (paper §6.3): committed transactions are
	// appended to a write-ahead log under this directory and replayed on
	// restart. Empty disables persistence (unit tests, far-edge nodes).
	DataDir string
	// SyncWrites makes commit acknowledgement wait until the transaction's
	// WAL append is durable (flushed and fsynced). With the pipelined path
	// the wait piggybacks on the group-commit writer, so N concurrent
	// committers share one fsync; inline it degenerates to an fsync per
	// commit. Only meaningful with DataDir set.
	SyncWrites bool
	// WALSyncEvery caps how many appends the group-commit writer coalesces
	// into one fsync batch (default 64); WALSyncInterval optionally lets the
	// writer linger to fill a batch (default 0: fsync whatever is pending).
	WALSyncEvery    int
	WALSyncInterval time.Duration
	// ReplOutbox bounds each per-peer replication outbox (default 4096);
	// a full outbox back-pressures committers rather than dropping, so
	// replication never silently relies on anti-entropy alone.
	ReplOutbox int
	// ReplBatchMax caps how many transactions a per-peer sender coalesces
	// into one wire.ReplBatch (default 128).
	ReplBatchMax int
	// Inline disables the staged write pipeline and restores the serial
	// pre-pipeline path: one wire.ReplTx per transaction per peer built and
	// sent inside commitAt, push fan-out under the global DC lock, and
	// unbatched WAL appends (an fsync per commit when SyncWrites is set).
	// It exists for A/B benchmarking (make bench-pipeline) and as an escape
	// hatch; production configurations leave it false.
	Inline bool
	// PerSubscriberPush restores PR 3's pipelined fan-out — one outbox, one
	// goroutine and one interest-filter pass per subscriber — instead of the
	// default interest-sharded fan-out. It exists for A/B benchmarking
	// (make bench-fanout); ignored when Inline is set.
	PerSubscriberPush bool
	// PushShardWorkers bounds the worker pool that drains dirty interest
	// shards in sharded fan-out mode (default 4). Irrelevant in inline and
	// per-subscriber modes.
	PushShardWorkers int
	// DirectPush disables tree multicast and restores PR 5's direct-sharded
	// fan-out: the DC sends every shard frame itself, once per subscriber.
	// It exists for A/B benchmarking (make bench-tree); production
	// configurations leave it false and let relay-capable subscribers
	// (Subscribe.Relay) re-fan-out frames to their subtree siblings.
	DirectPush bool
	// TreeDegree bounds a multicast subtree: one relay root plus at most
	// TreeDegree children (default 16). Only relay-capable subscribers join
	// trees; others always receive direct frames.
	TreeDegree int
	// TreeAckTimeout bounds how long the DC waits for a subtree root's
	// forwarding receipt before assuming the relay died: the affected
	// subscribers' cursors are rewound (the repair path re-covers them
	// directly) and the tree is re-rooted. Default 2s.
	TreeAckTimeout time.Duration
	// PushCoalesce corks a dirty shard for the given window before flushing
	// so that a burst of commits ships as one frame per member rather than
	// one frame per commit — the push-layer analogue of TCP corking.
	// Default 0 (flush immediately).
	PushCoalesce time.Duration
	// ServiceTime and Workers model the DC's finite capacity for
	// client-facing requests (commit acceptance, fetches, subscriptions,
	// migrated transactions): each such request occupies one of Workers
	// slots for ServiceTime. Zero disables the model (unit tests). The
	// benchmark harness uses it so saturation behaves like a real server
	// rather than an infinitely fast simulator.
	ServiceTime time.Duration
	Workers     int
	// PartialRepl enables interest-scoped replication (ROADMAP item 4): the
	// DC holds only the buckets in its interest set, advertises that set to
	// peers via BucketVec gossip, and receives payload-stripped stubs for
	// everything else. Buckets are acquired on demand (backfill) and may be
	// evicted when cold. Requires the pipelined path (incompatible with
	// Inline).
	PartialRepl bool
	// Buckets is the boot-time interest set (live immediately, no backfill —
	// at genesis every bucket is empty everywhere). Additional buckets join
	// on demand via EnsureBuckets. Ignored unless PartialRepl is set.
	Buckets []string
	// EvictAfter drops live buckets untouched for this long (cold-bucket
	// eviction, checked on the heartbeat worker; a drop is vetoed while the
	// bucket has local subscriber interest or no other live replica).
	// 0 disables eviction. Ignored unless PartialRepl is set.
	EvictAfter time.Duration
	// Obs, when non-nil, instruments the DC (edge commit acceptance, push
	// batch sizes, inter-DC propagation latency) and its storage shards.
	Obs *obs.Registry
}

// subscription tracks one edge node's (or group sync point's) interest set.
type subscription struct {
	node     string
	interest map[txn.ObjectID]bool
	// logIdx is the position in the DC's transaction log up to which the
	// subscriber has been served.
	logIdx int
	// stable is the stability cut last handed to the subscriber's outbox
	// (pipelined) or pushed (inline).
	stable vclock.Vector

	// Pipelined push fan-out (unused in inline mode). pending holds log
	// entries scanned but not yet sent (unfiltered — the worker applies the
	// interest filter outside the DC lock), pendingStable the latest cut to
	// advertise, sentStable the cut last actually handed to the network.
	// All are guarded by outMu, which also guards interest so the worker
	// can filter without the DC lock. Lock order: d.mu before outMu.
	outMu         sync.Mutex
	pending       []*txn.Transaction
	pendingStable vclock.Vector
	sentStable    vclock.Vector
	notify        chan struct{}
	stop          chan struct{}
	stopOnce      sync.Once

	// Interest-sharded fan-out bookkeeping (zero in inline and
	// per-subscriber modes). shard is the interest shard this subscription
	// currently belongs to, guarded by the fanout mutex. deliveredIdx is the
	// log index the subscriber has been sent through and fanGen the log
	// generation it belongs to; both are guarded by outMu, like sentStable.
	shard        *pushShard
	deliveredIdx int
	fanGen       uint64
	// rewinds counts delivery-cursor rewinds (guarded by outMu, bumped even
	// when the cursor was already at or below the rewind target — the
	// re-cover intent matters, not the movement). Optimistic advances
	// snapshot it together with deliveredIdx and back off per subscriber
	// when it moved: a rewind landing between the cursor scan and the
	// post-send advance must not be overwritten, or the replay gap it
	// requested is skipped for good.
	rewinds uint64

	// relay marks the subscriber as tree-multicast capable (it declared
	// wire.Subscribe.Relay): it may be grouped into a subtree and asked to
	// re-fan-out pushes. Sticky for the subscription's lifetime; written
	// under d.mu, read during shard placement (also under d.mu).
	relay bool
	// tree is the multicast subtree this subscription currently belongs to
	// (nil when direct). Guarded by the fanout mutex.
	tree *pushTree
}

// signal wakes the subscription's push worker (no-op if already signalled).
func (s *subscription) signal() {
	if s.notify == nil {
		return
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// replOutbox is one peer's bounded replication queue, drained by a dedicated
// sender goroutine that coalesces runs of transactions into wire.ReplBatch
// frames (one state-vector clone per batch instead of per transaction).
type replOutbox struct {
	peerIdx int
	peer    string
	ch      chan *txn.Transaction
}

// DC is one data centre.
type DC struct {
	cfg   Config
	node  transport.Conn
	coord *clocksi.Coordinator
	mesh  *replication.Mesh

	mu      sync.Mutex
	closed  bool
	lamport vclock.Lamport
	seq     uint64
	state   vclock.Vector
	peers   map[int]string
	log     []*txn.Transaction
	replLog []*txn.Transaction // every applied tx, masked or not, for anti-entropy
	byDot   map[vclock.Dot]*txn.Transaction
	subs    map[string]*subscription
	// visible decides whether a transaction may become visible (the ACL
	// check hook, paper §6.4); nil admits everything.
	visible func(*txn.Transaction) bool
	masked  map[vclock.Dot]*txn.Transaction

	capacity chan struct{} // nil when the service-time model is off
	journal  *wal.Log      // nil when persistence is off

	// walMu guards the sticky WAL error (see LastWALError); WAL failures
	// must not take the DC down mid-protocol, but they must be observable.
	walMu  sync.Mutex
	walErr error

	// outboxes are the per-peer replication queues (pipelined mode; created
	// in SetPeers under d.mu). replDepth/pushDepth mirror the queue depths
	// for the obs gauges without taking locks.
	outboxes  map[int]*replOutbox
	replDepth atomic.Int64
	pushDepth atomic.Int64
	// pipeStop stops every sender and push worker; pipeWG waits for them.
	pipeStop chan struct{}
	pipeWG   sync.WaitGroup

	// fan is the interest-sharded fan-out engine (nil in inline and
	// per-subscriber modes); fanShards/fanDirty mirror its shard count and
	// dirty-queue depth for the obs gauges without taking its lock.
	fan       *fanout
	fanShards atomic.Int64
	fanDirty  atomic.Int64

	// Interest-scoped replication state (see partial.go). bmu is a LEAF
	// lock: it is taken with d.mu, shard locks, or the fanout lock held, so
	// nothing may be acquired under it. partial mirrors cfg.PartialRepl;
	// buckets is the local bucket table; bucketSeq versions the interest set
	// (bumped on every change) and wantFloor records the seq of the latest
	// bucket ADDITION — incoming batches scoped against an older set are
	// refused (they may have stubbed a bucket we now hold).
	bmu       sync.Mutex
	partial   bool
	buckets   map[string]*bucketState
	bucketSeq uint64
	wantFloor uint64

	// Instrumentation handles (nil-safe no-ops when Config.Obs is unset).
	obsEdgeCommits  *obs.Counter
	obsEdgeNacks    *obs.Counter
	obsReplRx       *obs.Counter
	obsWALErrors    *obs.Counter
	obsFramesBuilt  *obs.Counter
	obsFramesShared *obs.Counter
	obsPushSends    *obs.Counter
	obsTreeAssigns  *obs.Counter
	obsTreeRepairs  *obs.Counter
	obsFullTxs      *obs.Counter
	obsStubTxs      *obs.Counter
	obsSkipped      *obs.Counter
	obsBackfills    *obs.Counter
	obsEvictions    *obs.Counter
	obsPushBatch    *obs.Histogram
	obsReplBatch    *obs.Histogram
	obsReplLat      *obs.Histogram
	obsShardFanout  *obs.Histogram

	stopHeartbeat chan struct{}
	heartbeatDone chan struct{}
}

// New creates a DC, registers it on the network, and starts its heartbeat
// worker (if configured). Call SetPeers once all DCs exist, then Close when
// done.
func New(net transport.Network, cfg Config) (*DC, error) {
	if cfg.PartialRepl && cfg.Inline {
		return nil, fmt.Errorf("dc %s: PartialRepl requires the pipelined path (Inline must be false)", cfg.Name)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.NumDCs <= 0 {
		cfg.NumDCs = 1
	}
	shards := make([]*clocksi.Shard, cfg.Shards)
	for i := range shards {
		shards[i] = clocksi.NewShard(fmt.Sprintf("%s/shard%d", cfg.Name, i), uint64(i))
	}
	coord, err := clocksi.NewCoordinator(shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.ReplOutbox <= 0 {
		cfg.ReplOutbox = 4096
	}
	if cfg.ReplBatchMax <= 0 {
		cfg.ReplBatchMax = 128
	}
	if cfg.PushShardWorkers <= 0 {
		cfg.PushShardWorkers = 4
	}
	if cfg.TreeDegree <= 0 {
		cfg.TreeDegree = 16
	}
	if cfg.TreeAckTimeout <= 0 {
		cfg.TreeAckTimeout = 2 * time.Second
	}
	d := &DC{
		cfg:           cfg,
		coord:         coord,
		mesh:          replication.NewMesh(cfg.Index, cfg.NumDCs),
		state:         vclock.NewVector(cfg.NumDCs),
		peers:         make(map[int]string),
		byDot:         make(map[vclock.Dot]*txn.Transaction),
		subs:          make(map[string]*subscription),
		masked:        make(map[vclock.Dot]*txn.Transaction),
		outboxes:      make(map[int]*replOutbox),
		pipeStop:      make(chan struct{}),
		stopHeartbeat: make(chan struct{}),
		heartbeatDone: make(chan struct{}),
	}
	if cfg.Obs != nil {
		d.obsEdgeCommits = cfg.Obs.Counter("dc.edge_commits")
		d.obsEdgeNacks = cfg.Obs.Counter("dc.edge_nacks")
		d.obsReplRx = cfg.Obs.Counter("dc.repl_rx")
		d.obsWALErrors = cfg.Obs.Counter("dc.wal_errors")
		d.obsFramesBuilt = cfg.Obs.Counter("dc.push_frames_built")
		d.obsFramesShared = cfg.Obs.Counter("dc.push_frames_shared")
		d.obsPushSends = cfg.Obs.Counter("dc.push_sends")
		d.obsTreeAssigns = cfg.Obs.Counter("dc.tree_assigns")
		d.obsTreeRepairs = cfg.Obs.Counter("dc.tree_repairs")
		d.obsFullTxs = cfg.Obs.Counter("dc.repl_full_txs")
		d.obsStubTxs = cfg.Obs.Counter("dc.repl_stub_txs")
		d.obsSkipped = cfg.Obs.Counter("dc.repl_skipped_buckets")
		d.obsBackfills = cfg.Obs.Counter("dc.backfills")
		d.obsEvictions = cfg.Obs.Counter("dc.bucket_evictions")
		d.obsPushBatch = cfg.Obs.Histogram("dc.push_batch_txs")
		d.obsReplBatch = cfg.Obs.Histogram("dc.repl_batch_txs")
		d.obsReplLat = cfg.Obs.Histogram("dc.repl_propagation_ns")
		d.obsShardFanout = cfg.Obs.Histogram("dc.push_shard_fanout")
		cfg.Obs.RegisterGauge("dc.repl_outbox_depth", obs.AggSum, func() int64 {
			return d.replDepth.Load()
		})
		cfg.Obs.RegisterGauge("dc.push_outbox_depth", obs.AggSum, func() int64 {
			return d.pushDepth.Load()
		})
		cfg.Obs.RegisterGauge("dc.push_shards", obs.AggSum, func() int64 {
			return d.fanShards.Load()
		})
		cfg.Obs.RegisterGauge("dc.push_dirty_shards", obs.AggSum, func() int64 {
			return d.fanDirty.Load()
		})
		coord.SetObs(cfg.Obs)
	}
	if cfg.AutoAdvanceThreshold > 0 {
		p := store.AdvancePolicy{
			JournalThreshold: cfg.AutoAdvanceThreshold,
			// Fold up to the K-stable cut; keep dots so migration-induced
			// re-delivery stays deduplicated.
			Cut:      d.Stable,
			KeepDots: true,
		}
		if cfg.PartialRepl {
			// Each bucket folds at its own K-stability frontier, computed
			// over only the replicas holding it (partial.go).
			p.Cut = nil
			p.CutFor = d.bucketCutFor
		}
		coord.SetAutoAdvance(p)
	}
	if cfg.ServiceTime > 0 {
		if cfg.Workers <= 0 {
			cfg.Workers = 2 * cfg.Shards
		}
		d.capacity = make(chan struct{}, cfg.Workers)
	}
	d.cfg = cfg
	if cfg.PartialRepl {
		d.initPartial()
	}
	if cfg.DataDir != "" {
		if err := d.recover(); err != nil {
			return nil, fmt.Errorf("dc: recover %s: %w", cfg.Name, err)
		}
		logFile, err := wal.OpenWithOptions(cfg.DataDir, cfg.Name+".wal", wal.Options{
			// The pipelined path batches WAL appends behind a single group-
			// commit writer; inline mode keeps the legacy buffered appends.
			GroupCommit:  !cfg.Inline,
			SyncEvery:    cfg.WALSyncEvery,
			SyncInterval: cfg.WALSyncInterval,
			OnError:      d.noteWALError,
			Obs:          cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		d.journal = logFile
	}
	if !cfg.Inline && !cfg.PerSubscriberPush {
		d.fan = newFanout(d)
		for i := 0; i < cfg.PushShardWorkers; i++ {
			d.pipeWG.Add(1)
			go d.runShardWorker()
		}
		if !cfg.DirectPush {
			d.pipeWG.Add(1)
			go d.runTreeSweeper()
		}
	}
	d.node = net.AddNode(cfg.Name, d.handle)
	if cfg.Heartbeat > 0 {
		go d.heartbeatLoop()
	} else {
		close(d.heartbeatDone)
	}
	return d, nil
}

// SetPeers wires the other DCs (index → network node name). In pipelined
// mode it also creates one bounded outbox plus sender goroutine per peer;
// commitAt enqueues onto these and the senders coalesce runs of pending
// transactions into wire.ReplBatch frames.
func (d *DC) SetPeers(peers map[int]string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for idx, name := range peers {
		if idx == d.cfg.Index {
			continue
		}
		d.peers[idx] = name
		if d.cfg.Inline || d.outboxes[idx] != nil || d.closed {
			continue
		}
		o := &replOutbox{peerIdx: idx, peer: name, ch: make(chan *txn.Transaction, d.cfg.ReplOutbox)}
		d.outboxes[idx] = o
		d.pipeWG.Add(1)
		go d.runReplSender(o)
	}
}

// runReplSender drains one peer's outbox: it blocks for the first pending
// transaction, greedily coalesces whatever else is queued (up to
// ReplBatchMax) into a single ReplBatch with one state-vector clone, and
// ships it. Per-peer FIFO (outbox order = commit order, simnet links are
// FIFO) preserves the causal order of this DC's own commits.
func (d *DC) runReplSender(o *replOutbox) {
	defer d.pipeWG.Done()
	for {
		select {
		case <-d.pipeStop:
			return
		case t := <-o.ch:
			batch := make([]*txn.Transaction, 1, d.cfg.ReplBatchMax)
			batch[0] = t
		fill:
			for len(batch) < d.cfg.ReplBatchMax {
				select {
				case t2 := <-o.ch:
					batch = append(batch, t2)
				default:
					break fill
				}
			}
			d.replDepth.Add(-int64(len(batch)))
			d.obsReplBatch.Observe(int64(len(batch)))
			txs, wantSeq := d.scopeBatch(o.peerIdx, batch)
			msg := wire.ReplBatch{From: d.cfg.Index, Txs: txs, State: d.State(), SentAt: time.Now(), WantSeq: wantSeq}
			_ = d.node.Send(o.peer, msg) // partitions heal via anti-entropy
		}
	}
}

// enqueueRepl fans a committed transaction out to every peer outbox. A full
// outbox back-pressures the committer (blocking send) instead of dropping;
// pipeStop keeps a blocked committer from deadlocking against Close.
func (d *DC) enqueueRepl(outs []*replOutbox, cp *txn.Transaction) {
	for _, o := range outs {
		select {
		case o.ch <- cp:
			d.replDepth.Add(1)
		case <-d.pipeStop:
			return
		}
	}
}

// SetVisibilityCheck installs the ACL hook: transactions for which check
// returns false are masked — withheld from subscribers and from reads at
// this DC's stable cut — together with every transaction that causally
// depends on them (paper §5.3, §6.4).
func (d *DC) SetVisibilityCheck(check func(*txn.Transaction) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.visible = check
}

// Close stops the DC's background work (heartbeat, replication senders,
// push workers) and flushes the write-ahead log.
func (d *DC) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	journal := d.journal
	d.mu.Unlock()
	close(d.stopHeartbeat)
	<-d.heartbeatDone
	close(d.pipeStop)
	if d.fan != nil {
		d.fan.stop()
	}
	d.pipeWG.Wait()
	if journal != nil {
		_ = journal.Close()
	}
}

// recover replays the write-ahead log: every recorded transaction is
// re-applied (the WAL was appended in causal order) and the sequencer and
// state vector are rebuilt.
func (d *DC) recover() error {
	return wal.Replay(d.cfg.DataDir, d.cfg.Name+".wal", func(t *txn.Transaction) error {
		if err := d.coord.ApplyCommitted(t); err != nil && !errors.Is(err, store.ErrDuplicate) {
			return err
		}
		d.mu.Lock()
		d.lamport.Witness(t.Dot.Seq)
		d.state = t.Commit.JoinInto(d.state, t.Snapshot)
		if ts, ok := t.Commit[d.cfg.Index]; ok && ts > d.seq {
			d.seq = ts
		}
		d.recordLocked(t)
		d.mu.Unlock()
		d.mesh.ObserveSelf(d.state)
		return nil
	})
}

// persist appends a locally accepted transaction to the write-ahead log.
// With SyncWrites it returns only after the append's group-commit batch is
// durable (one shared fsync per batch); otherwise it is fire-and-forget. An
// I/O error must not take the DC down mid-protocol, so failures are counted
// (dc.wal_errors) and kept via LastWALError instead of propagating.
func (d *DC) persist(t *txn.Transaction) {
	if d.journal == nil {
		return
	}
	var err error
	if d.cfg.SyncWrites {
		err = d.journal.AppendWait(t)
	} else {
		err = d.journal.Append(t)
	}
	if err != nil {
		d.noteWALError(err)
	}
}

// persistReplicated appends a peer-replicated transaction. It never waits
// for durability, even under SyncWrites: replicated transactions are
// recoverable from their origin DC via anti-entropy, and the apply path
// calls this while holding d.mu, where an fsync wait would stall commits.
func (d *DC) persistReplicated(t *txn.Transaction) {
	if d.journal == nil {
		return
	}
	if err := d.journal.Append(t); err != nil {
		d.noteWALError(err)
	}
}

// noteWALError counts a WAL failure and keeps the first one for
// LastWALError. It doubles as the journal's asynchronous OnError observer,
// so the same underlying failure may be counted more than once (once per
// observation); the counter signals trouble, the sticky error identifies it.
func (d *DC) noteWALError(err error) {
	if err == nil {
		return
	}
	d.obsWALErrors.Inc()
	d.walMu.Lock()
	if d.walErr == nil {
		d.walErr = err
	}
	d.walMu.Unlock()
}

// LastWALError reports the first write-ahead-log append/flush/fsync failure
// observed since the DC started, or nil. It is sticky: persistence errors
// are swallowed on the hot path (the DC keeps serving), so monitoring must
// be able to see that the log is no longer trustworthy.
func (d *DC) LastWALError() error {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	return d.walErr
}

// Name returns the DC's network node name.
func (d *DC) Name() string { return d.cfg.Name }

// Index returns the DC's vector component index.
func (d *DC) Index() int { return d.cfg.Index }

// State returns a copy of the DC's current state vector.
func (d *DC) State() vclock.Vector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state.Clone()
}

// Stable returns the current K-stable cut (the edge-visible frontier).
func (d *DC) Stable() vclock.Vector { return d.mesh.KStable(d.cfg.K) }

// heartbeatLoop gossips the state vector so stability advances during quiet
// periods.
func (d *DC) heartbeatLoop() {
	defer close(d.heartbeatDone)
	ticker := time.NewTicker(d.cfg.Heartbeat)
	defer ticker.Stop()
	lastCompact := time.Now()
	ticks := 0
	for {
		select {
		case <-ticker.C:
			if d.cfg.CompactEvery > 0 && time.Since(lastCompact) >= d.cfg.CompactEvery {
				lastCompact = time.Now()
				_ = d.Compact() // best effort; journals shrink next round
			}
			if d.partial {
				ticks++
				if ticks%32 == 1 {
					// Interest sets gossip on every change; the periodic
					// re-broadcast converges peers that booted later or missed
					// the change broadcast.
					d.gossipBuckets()
				}
				d.sweepIdleBuckets()
			}
			d.mu.Lock()
			msg := wire.ReplHeartbeat{From: d.cfg.Index, State: d.state.Clone()}
			peers := make([]string, 0, len(d.peers))
			for _, p := range d.peers {
				peers = append(peers, p)
			}
			d.notifySubscribersLocked(true)
			d.mu.Unlock()
			for _, p := range peers {
				_ = d.node.Send(p, msg) // partitions surface elsewhere
			}
		case <-d.stopHeartbeat:
			return
		}
	}
}

// handle dispatches incoming network messages.
func (d *DC) handle(from string, msg any) any {
	switch msg.(type) {
	case wire.EdgeCommit, wire.Subscribe, wire.FetchObject, wire.MigratedTx:
		if d.capacity != nil {
			d.capacity <- struct{}{}
			time.Sleep(d.cfg.ServiceTime)
			defer func() { <-d.capacity }()
		}
	case wire.ReplTx, wire.ReplBatch:
		// Applying replicated traffic costs a fraction of a client request;
		// this is what keeps N DCs from scaling capacity N× for write-heavy
		// workloads. The cost is per frame, not per transaction — coalesced
		// batches amortise the receive overhead, which is exactly the win
		// the pipelined sender buys.
		if d.capacity != nil {
			d.capacity <- struct{}{}
			time.Sleep(d.cfg.ServiceTime / 4)
			defer func() { <-d.capacity }()
		}
	}
	switch m := msg.(type) {
	case wire.ReplTx:
		// Single-transaction compatibility envelope (older peers, tests).
		d.receiveReplicated(wire.ReplBatch{From: m.From, Txs: []*txn.Transaction{m.Tx}, State: m.State, SentAt: m.SentAt})
		return nil
	case wire.ReplBatch:
		d.receiveReplicated(m)
		return nil
	case wire.ReplHeartbeat:
		d.mesh.ObservePeer(m.From, m.State)
		d.mu.Lock()
		// A gossip receipt is a stability advance without local traffic:
		// broadcast it so quiet-bucket subscribers' cuts keep moving.
		d.notifySubscribersLocked(true)
		resend, peer := d.antiEntropyLocked(m)
		d.mu.Unlock()
		if len(resend.Txs) > 0 && peer != "" {
			_ = d.node.Send(peer, resend)
		}
		return nil
	case wire.EdgeCommit:
		return d.acceptEdgeTx(m.Tx)
	case wire.Subscribe:
		return d.subscribe(m)
	case wire.Unsubscribe:
		d.unsubscribe(m)
		return nil
	case wire.TreeAck:
		d.handleTreeAck(m)
		return nil
	case wire.FetchObject:
		return d.fetchObject(from, m.ID, m.At)
	case wire.MigratedTx:
		return d.runMigrated(m)
	case wire.BucketVec:
		return d.handleBucketVec(m)
	case wire.BackfillReq:
		return d.serveBackfill(m)
	case wire.BucketDrop:
		d.mesh.DropBucket(m.From, m.Seq, m.Bucket)
		// The dropper confirmed a survivor before evicting; if it was us, the
		// pin has served its purpose.
		d.releaseDropPin(m.From, m.Bucket)
		return nil
	case wire.DropQuery:
		return d.handleDropQuery(m)
	default:
		return nil
	}
}

// --- local (in-DC) transactions ---

// Tx is an interactive transaction executing at this DC (a cloud client, a
// migrated edge transaction, or a benchmark client in "no cache" mode).
type Tx struct {
	dc       *DC
	dot      vclock.Dot
	snapshot vclock.Vector
	actor    string
	updates  []txn.Update
	done     bool
}

// Begin starts an interactive transaction on the DC's current state (SI
// within the DC). The dot is minted up front so operations prepared against
// the transaction's own buffered updates carry the final tags.
func (d *DC) Begin(actor string) *Tx {
	d.mu.Lock()
	snap := d.state.Clone()
	dot := vclock.Dot{Node: d.cfg.Name, Seq: d.lamport.Next()}
	d.mu.Unlock()
	return &Tx{dc: d, dot: dot, snapshot: snap, actor: actor}
}

// Read returns the object at the transaction snapshot, including the
// transaction's own buffered updates. On a partially replicating DC the
// object's bucket is made live first (backfill), so a read never observes a
// half-resident bucket.
func (t *Tx) Read(id txn.ObjectID) (crdt.Object, error) {
	if err := t.dc.EnsureBuckets(id.Bucket); err != nil {
		return nil, err
	}
	obj, err := t.dc.coord.Read(id, t.snapshot, store.ReadOptions{})
	if errors.Is(err, store.ErrNotFound) {
		var kind crdt.Kind
		for _, u := range t.updates {
			if u.Object == id {
				kind = u.Kind
				break
			}
		}
		if kind == 0 {
			return nil, err
		}
		obj, err = crdt.New(kind)
	}
	if err != nil {
		return nil, err
	}
	for _, u := range t.updates {
		if u.Object != id {
			continue
		}
		// Reads may be shared sealed snapshots; fork before the first
		// buffered update.
		if obj.Sealed() {
			obj = obj.Fork()
		}
		if err := obj.Apply(u.Meta(t.dot), u.Op); err != nil {
			return nil, err
		}
	}
	return obj, nil
}

// Update buffers one CRDT operation.
func (t *Tx) Update(id txn.ObjectID, kind crdt.Kind, op crdt.Op) {
	t.updates = append(t.updates, txn.Update{Object: id, Kind: kind, Op: op, Seq: len(t.updates)})
}

// Commit runs the ClockSI 2PC and replicates the transaction. Read-only
// transactions commit trivially. The returned stamps are the concrete commit
// descriptor.
func (t *Tx) Commit() (vclock.CommitStamps, error) {
	if t.done {
		return nil, errors.New("dc: transaction already finished")
	}
	t.done = true
	if len(t.updates) == 0 {
		return nil, nil
	}
	tx := &txn.Transaction{
		Dot:      t.dot,
		Origin:   t.dc.cfg.Name,
		Actor:    t.actor,
		Snapshot: t.snapshot,
		Updates:  t.updates,
	}
	return t.dc.commitLocal(tx)
}

// commitLocal publishes a transaction originated at this DC.
func (d *DC) commitLocal(t *txn.Transaction) (vclock.CommitStamps, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if t.Dot.IsZero() {
		t.Dot = vclock.Dot{Node: d.cfg.Name, Seq: d.lamport.Next()}
	}
	d.mu.Unlock()
	if err := d.EnsureBuckets(bucketsOf(t.Updates)...); err != nil {
		return nil, err
	}
	return d.commitAt(t)
}

// commitAt runs the 2PC for a transaction (local or edge-originated),
// assigning the commit timestamp from the DC sequencer, then records and
// replicates it. Pipelined, the replication leg is a per-peer outbox
// enqueue (the senders build and ship coalesced batches) and the push leg
// is an outbox append drained by per-subscriber workers, so the commit
// critical path holds d.mu only for the bookkeeping writes.
func (d *DC) commitAt(t *txn.Transaction) (vclock.CommitStamps, error) {
	stamps, err := d.coord.Commit(t, func(maxPrepare uint64) (int, uint64) {
		d.mu.Lock()
		defer d.mu.Unlock()
		if maxPrepare > d.seq {
			d.seq = maxPrepare
		}
		d.seq++
		return d.cfg.Index, d.seq
	})
	if err != nil {
		return nil, err
	}
	t.Commit = stamps
	d.persist(t)
	d.mu.Lock()
	d.lamport.Witness(t.Dot.Seq)
	d.state = t.Commit.JoinInto(d.state, t.Snapshot)
	d.recordLocked(t)
	d.mesh.ObserveSelf(d.state)
	var (
		inlinePeers []string
		inlineMsg   wire.ReplTx
		outs        []*replOutbox
		cp          *txn.Transaction
	)
	if d.cfg.Inline {
		inlinePeers, inlineMsg = d.replMsgLocked(t)
	} else if len(d.outboxes) > 0 {
		// One clone shared by every peer's batch (the wire contract treats
		// in-flight transactions as immutable), collected under d.mu so a
		// concurrent SetPeers cannot race the map.
		cp = t.Clone()
		outs = make([]*replOutbox, 0, len(d.outboxes))
		for _, o := range d.outboxes {
			outs = append(outs, o)
		}
	}
	d.notifySubscribersLocked(false)
	d.mu.Unlock()
	if d.cfg.Inline {
		for _, p := range inlinePeers {
			_ = d.node.Send(p, inlineMsg)
		}
	} else if cp != nil {
		d.enqueueRepl(outs, cp)
	}
	return stamps.Clone(), nil
}

// recordLocked appends the transaction to the causal log and the dot index,
// applying the masking rule: a transaction failing the visibility check, or
// depending on a masked transaction, is masked.
func (d *DC) recordLocked(t *txn.Transaction) {
	d.byDot[t.Dot] = t
	d.replLog = append(d.replLog, t)
	if !d.passesVisibilityLocked(t) {
		d.masked[t.Dot] = t
		return
	}
	d.log = append(d.log, t)
}

// passesVisibilityLocked applies the ACL hook plus transitive masking.
func (d *DC) passesVisibilityLocked(t *txn.Transaction) bool {
	if d.visible != nil && !d.visible(t) {
		return false
	}
	for _, m := range d.masked {
		if m.Commit.VisibleAt(m.Snapshot, t.Snapshot) {
			return false // depends on a masked transaction
		}
	}
	return true
}

// replMsgLocked builds the replication fan-out for a transaction.
func (d *DC) replMsgLocked(t *txn.Transaction) ([]string, wire.ReplTx) {
	peers := make([]string, 0, len(d.peers))
	for _, p := range d.peers {
		peers = append(peers, p)
	}
	return peers, wire.ReplTx{From: d.cfg.Index, Tx: t.Clone(), State: d.state.Clone(), SentAt: time.Now()}
}

// antiEntropyLocked finds own-accepted transactions the heartbeat sender is
// missing, so commits broadcast into a partition are retransmitted after the
// partition heals. Duplicates on the receiving side are filtered by dot. The
// resends ride one ReplBatch: the state vector and send stamp are built once
// per round, not once per resent transaction (the old path cloned the state
// up to 256 times per heartbeat).
func (d *DC) antiEntropyLocked(m wire.ReplHeartbeat) (wire.ReplBatch, string) {
	peer := d.peers[m.From]
	if peer == "" {
		return wire.ReplBatch{}, ""
	}
	var txs []*txn.Transaction
	for _, t := range d.replLog {
		ts, ours := t.Commit[d.cfg.Index]
		if !ours || ts <= m.State.Get(d.cfg.Index) {
			continue
		}
		txs = append(txs, t.Clone())
		if len(txs) >= 256 { // bound each round; the next heartbeat continues
			break
		}
	}
	if len(txs) == 0 {
		return wire.ReplBatch{}, peer
	}
	// Anti-entropy resends are scoped like the live stream: the receiver's
	// WantSeq guard plus the next round's resend make dropped batches
	// self-healing.
	txs, wantSeq := d.scopeBatch(m.From, txs)
	return wire.ReplBatch{From: d.cfg.Index, Txs: txs, State: d.state.Clone(), SentAt: time.Now(), WantSeq: wantSeq}, peer
}

// --- edge transaction acceptance (paper §3.7) ---

// stampOf picks the concrete commit coordinate advertised in an
// EdgeCommitAck: the stamp of the lowest DC index present. A committed
// transaction normally carries exactly one concrete stamp, but when it
// carries several (snapshot joins folded in), map iteration order must not
// decide — re-acking the same dot twice has to name the same coordinate.
func stampOf(stamps vclock.CommitStamps) (int, uint64) {
	found := false
	var dc int
	var ts uint64
	for idx, t := range stamps {
		if !found || idx < dc {
			found = true
			dc, ts = idx, t
		}
	}
	return dc, ts
}

// acceptEdgeTx handles an asynchronously committed edge transaction.
func (d *DC) acceptEdgeTx(t *txn.Transaction) any {
	if err := d.EnsureBuckets(bucketsOf(t.Updates)...); err != nil {
		// No replica could serve a backfill for a touched bucket; the edge
		// retries against this DC or migrates to another.
		d.obsEdgeNacks.Inc()
		return wire.EdgeCommitNack{Dot: t.Dot}
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.obsEdgeNacks.Inc()
		return wire.EdgeCommitNack{Dot: t.Dot}
	}
	// Duplicate (e.g. re-sent after migration): re-ack with the stamps this
	// DC already knows; the dot filter keeps effects exactly-once.
	if prev, ok := d.byDot[t.Dot]; ok {
		ack := wire.EdgeCommitAck{Dot: t.Dot, Stable: d.mesh.KStable(d.cfg.K)}
		ack.DCIndex, ack.Ts = stampOf(prev.Commit)
		d.mu.Unlock()
		return ack
	}
	// Causal compatibility: the edge's dependencies must all be visible
	// here, otherwise the edge node is incompatible with this DC (§3.8).
	if !t.Snapshot.LEQ(d.state) {
		missing := d.state.Clone()
		d.mu.Unlock()
		d.obsEdgeNacks.Inc()
		return wire.EdgeCommitNack{Dot: t.Dot, Missing: missing}
	}
	d.lamport.Witness(t.Dot.Seq)
	d.mu.Unlock()

	cp := t.Clone()
	stamps, err := d.commitAt(cp)
	if err != nil {
		if errors.Is(err, store.ErrDuplicate) {
			// Raced with replication of the same dot; fall through to re-ack.
			d.mu.Lock()
			prev, ok := d.byDot[t.Dot]
			ack := wire.EdgeCommitAck{Dot: t.Dot, Stable: d.mesh.KStable(d.cfg.K)}
			if ok {
				ack.DCIndex, ack.Ts = stampOf(prev.Commit)
			}
			d.mu.Unlock()
			if ok {
				return ack
			}
		}
		d.obsEdgeNacks.Inc()
		return wire.EdgeCommitNack{Dot: t.Dot}
	}
	d.obsEdgeCommits.Inc()
	ack := wire.EdgeCommitAck{Dot: t.Dot, Stable: d.mesh.KStable(d.cfg.K)}
	ack.DCIndex, ack.Ts = stampOf(stamps)
	return ack
}

// --- replication receive path ---

// receiveReplicated applies a batch of transactions replicated from a peer
// DC once their causal dependencies are satisfied. The whole batch is
// admitted in one mesh call and applied under one d.mu acquisition, so a
// coalesced batch of N transactions pays the lock/mesh overhead once.
func (d *DC) receiveReplicated(m wire.ReplBatch) {
	d.obsReplRx.Add(int64(len(m.Txs)))
	if !m.SentAt.IsZero() {
		d.obsReplLat.Observe(int64(time.Since(m.SentAt)))
	}
	d.mesh.ObservePeer(m.From, m.State)
	if d.dropStale(m) {
		// Scoped against an interest set older than our latest bucket
		// addition: the batch may stub a bucket we now hold. Refuse it whole
		// (the peer's state was still observed above); anti-entropy re-sends
		// the content with a fresher scope.
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	// Clone non-duplicates: the sender's record (and other recipients') must
	// not share mutable state with this DC's log. Duplicate or partially
	// overlapping batches (anti-entropy rounds racing the live stream) are
	// filtered by dot here and again after admission.
	incoming := make([]*txn.Transaction, 0, len(m.Txs))
	for _, t := range m.Txs {
		if t == nil {
			continue
		}
		if _, dup := d.byDot[t.Dot]; dup {
			continue
		}
		incoming = append(incoming, t.Clone())
	}
	ready := d.mesh.AdmitBatch(incoming, d.state)
	for _, t := range ready {
		if _, dup := d.byDot[t.Dot]; dup {
			continue
		}
		if err := d.coord.ApplyCommitted(t); err != nil && !errors.Is(err, store.ErrDuplicate) {
			continue // skip malformed transaction, keep the DC alive
		}
		d.persistReplicated(t)
		d.lamport.Witness(t.Dot.Seq)
		d.state = t.Commit.JoinInto(d.state, t.Snapshot)
		d.recordLocked(t)
	}
	d.mesh.ObserveSelf(d.state)
	d.notifySubscribersLocked(false)
	ackTo, ack := d.peers[m.From], wire.ReplHeartbeat{From: d.cfg.Index, State: d.state.Clone()}
	d.mu.Unlock()
	// Acknowledge with our new state vector so the sender's K-stability
	// frontier advances promptly even without further traffic.
	if len(ready) > 0 && ackTo != "" {
		_ = d.node.Send(ackTo, ack)
	}
}

// --- edge subscriptions and pushes ---

// subscribe registers or extends an interest set and returns base versions
// of the requested objects at the subscriber's stable cut.
func (d *DC) subscribe(m wire.Subscribe) any {
	buckets := bucketsOfIDs(m.Objects)
	for attempt := 0; ; attempt++ {
		if d.partial {
			// The requested buckets must be live here before interest
			// registers: serving a seed for a bucket this DC does not hold
			// would hand the subscriber "empty at cut" for state that exists
			// elsewhere. A failed backfill fails the subscribe; the edge
			// retries.
			if err := d.EnsureBuckets(buckets...); err != nil {
				return nil
			}
		}
		ack := d.subscribeRegister(m)
		// Re-validate liveness *after* the interest registered: a DropBucket
		// racing between the ensure above and the registration tombstones the
		// bucket and evicts the seed we just materialised. Now that the
		// interest is on record, the drop's atomic veto (same d.mu the
		// registration held) refuses any further drop, so one re-ensure —
		// which waits out the trailing eviction and re-backfills — settles it.
		if !d.partial || d.bucketsLive(buckets) {
			return ack
		}
		if attempt >= 3 {
			return nil // persistent churn; let the edge retry from scratch
		}
	}
}

// subscribeRegister is subscribe's registration critical section: it installs
// or extends the subscription, registers interest, and materialises the seed,
// all under d.mu.
func (d *DC) subscribeRegister(m wire.Subscribe) any {
	d.mu.Lock()
	sub := d.subs[m.Node]
	if sub == nil {
		start := d.mesh.KStable(d.cfg.K)
		if m.Resume {
			// The subscriber already holds state up to Since (from a
			// previous connection or another DC); replay from there. Any
			// overlap is deduplicated by dot on the subscriber.
			start = m.Since.Clone()
		}
		sub = &subscription{
			node:     m.Node,
			interest: make(map[txn.ObjectID]bool),
			stable:   start,
		}
		// Everything at or below the start cut is already held by the
		// subscriber (via the object snapshots below, or its prior cache).
		for _, t := range d.log {
			if !t.VisibleAt(start) {
				break
			}
			sub.logIdx++
		}
		if d.fan != nil {
			// Sharded: no per-subscriber goroutine. The delivery cursor
			// starts at the start cut; if that is behind the scan frontier
			// (Resume with an old Since), the placement kick below makes the
			// first flush repair the gap.
			sub.sentStable = start
			sub.deliveredIdx = sub.logIdx
			sub.fanGen = d.fan.gen.Load()
		} else if !d.cfg.Inline && !d.closed {
			sub.pendingStable = start
			sub.sentStable = start
			sub.notify = make(chan struct{}, 1)
			sub.stop = make(chan struct{})
			d.pipeWG.Add(1)
			go d.runPushWorker(sub)
		}
		d.subs[m.Node] = sub
	} else if m.Resume && !sub.stable.LEQ(m.Since) {
		// Reconnection of a live subscription with a cut behind our cursor:
		// rewind so pushes lost during the disconnection are replayed. When
		// the subscriber is already at or ahead of the cursor, nothing was
		// lost and the (linear) rewind scan is skipped.
		d.rewindSubLocked(sub, m.Since)
	}
	if m.Relay {
		sub.relay = true // sticky for the subscription's lifetime
	}
	// Seeds are materialised at the *current* stable cut, never at the
	// (possibly rewound) subscription cursor: the cut must dominate every
	// transaction already pushed to this subscriber, so that a replayed
	// update skipped on arrival is guaranteed to be covered by the seed.
	seedCut := d.mesh.KStable(d.cfg.K)
	ack := wire.SubscribeAck{Stable: sub.stable.Clone()}
	sub.outMu.Lock()
	for _, id := range m.Objects {
		sub.interest[id] = true
	}
	if sub.sentStable != nil {
		// Pipelined, advertise the cut last actually handed to the network,
		// not the outbox cursor: the inline path guaranteed every push at or
		// below ack.Stable was sent before the reply (FIFO links then deliver
		// them first), and visibility at the edge must not outrun delivery.
		ack.Stable = sub.sentStable.Clone()
	}
	sub.outMu.Unlock()
	if d.fan != nil && !d.closed {
		// (Re)place in the interest shard matching the possibly-extended
		// signature; the kick repairs any cursor gap.
		d.fan.place(sub)
	}
	for _, id := range m.Objects {
		// Per bucket, the seed cut is lifted to at least the bucket's
		// seed/advance floor: a backfilled or per-bucket-advanced base may
		// hold effects above the global stable cut, and the advertised vector
		// must cover everything the state contains.
		ack.Objects = append(ack.Objects, d.materializeLocked(id, d.seedCutFor(id.Bucket, seedCut)))
	}
	d.notifySubscribersLocked(false)
	d.mu.Unlock()
	return ack
}

// rewindSubLocked moves a subscriber's cursor back to cut so the log above it
// is replayed (duplicates are filtered by dot downstream). Pipelined, the
// outbox is discarded too: its contents are above the new cursor and will be
// rescanned, and replaying them from the old cursor first would break the
// causal order of the push stream. Called with d.mu held.
func (d *DC) rewindSubLocked(sub *subscription, cut vclock.Vector) {
	sub.stable = cut.Clone()
	sub.logIdx = 0
	for _, t := range d.log {
		if !t.VisibleAt(cut) {
			break
		}
		sub.logIdx++
	}
	if d.cfg.Inline {
		return
	}
	if d.fan != nil {
		// Sharded: pull the delivery cursor back; the next flush of the
		// subscriber's shard rebuilds the gap from the log (repair frame).
		// If the subscriber rides a multicast subtree, bump the tree's ver
		// first (under the fanout mutex, which guards sub.tree) so any
		// in-flight tree plan backs off instead of optimistically advancing
		// the cursor past the replay gap this rewind requests.
		d.fan.mu.Lock()
		if sub.tree != nil {
			sub.tree.ver++
		}
		sub.outMu.Lock()
		if sub.logIdx < sub.deliveredIdx {
			sub.deliveredIdx = sub.logIdx
		}
		sub.rewinds++
		sub.sentStable = sub.stable
		sub.outMu.Unlock()
		d.fan.mu.Unlock()
		return
	}
	sub.outMu.Lock()
	d.pushDepth.Add(-int64(len(sub.pending)))
	sub.pending = nil
	sub.pendingStable = sub.stable
	sub.sentStable = sub.stable
	sub.outMu.Unlock()
}

// dropSubLocked removes a subscription and stops its push worker. Called with
// d.mu held.
func (d *DC) dropSubLocked(sub *subscription) {
	delete(d.subs, sub.node)
	if sub.stop != nil {
		sub.stopOnce.Do(func() { close(sub.stop) })
	}
	if d.fan != nil {
		d.fan.remove(sub)
	}
	sub.outMu.Lock()
	d.pushDepth.Add(-int64(len(sub.pending)))
	sub.pending = nil
	sub.outMu.Unlock()
}

// unsubscribe shrinks an interest set (or drops the subscription entirely
// when no objects remain).
func (d *DC) unsubscribe(m wire.Unsubscribe) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sub := d.subs[m.Node]
	if sub == nil {
		return
	}
	if len(m.Objects) == 0 {
		d.dropSubLocked(sub)
		return
	}
	sub.outMu.Lock()
	for _, id := range m.Objects {
		delete(sub.interest, id)
	}
	empty := len(sub.interest) == 0
	sub.outMu.Unlock()
	if empty {
		d.dropSubLocked(sub)
	} else if d.fan != nil && !d.closed {
		// The signature may have shrunk: move to the narrower shard so
		// shared frames stop carrying the dropped buckets.
		d.fan.place(sub)
	}
}

// fetchObject serves a cache miss. When the requester supplies its
// transaction snapshot (At), the object is materialised at exactly that cut
// so the read joins the transaction's snapshot atomically; the requester's
// push cursor is rewound to the cut so updates above it are (re)delivered —
// duplicates are filtered by dot and base vectors. Without a usable At the
// DC serves its stable cut.
func (d *DC) fetchObject(requester string, id txn.ObjectID, at vclock.Vector) any {
	if err := d.EnsureBuckets(id.Bucket); err != nil {
		// Serving "empty at cut" for a bucket this DC cannot backfill would
		// poison the requester's cache; fail the fetch instead.
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cut := d.mesh.KStable(d.cfg.K)
	if at.LEQ(d.state) {
		// An empty At (a client with no state yet) correctly gets the
		// initial cut: serving anything newer could tear the client's
		// first transaction.
		cut = at.Clone()
	}
	// Lift to the bucket's seed/advance floor (partial mode): the base may
	// hold effects above the requested cut, and the advertised vector must
	// cover them. A cut above the requester's snapshot resolves downstream
	// exactly like a stable-cut serve would (retry against a fresher
	// snapshot).
	cut = d.seedCutFor(id.Bucket, cut)
	if sub := d.subs[requester]; sub != nil {
		// Register interest under the same lock that serves the state:
		// otherwise the push cursor could advance past a transaction
		// touching this object between the fetch and the (asynchronous)
		// subscription, losing it for good.
		sub.outMu.Lock()
		sub.interest[id] = true
		ahead := !sub.stable.LEQ(cut)
		if d.fan != nil {
			// Sharded mode advances sentStable, not sub.stable.
			ahead = !sub.sentStable.LEQ(cut)
		}
		sub.outMu.Unlock()
		if ahead {
			// The cursor is ahead of the served cut: rewind so the gap is
			// replayed (duplicates are filtered downstream).
			d.rewindSubLocked(sub, cut)
		}
		if d.fan != nil && !d.closed {
			// The fetched bucket joins the signature; the kick replays
			// updates above the served cut for it.
			d.fan.place(sub)
		}
	}
	return d.materializeLocked(id, cut)
}

// materializeLocked materialises the object state at the given cut. The
// store hands back a sealed snapshot shared with its materialisation cache,
// so fanning the same state out to many subscribers costs no copies; the
// receiving side seeds its own store from it (Seed clones) or reads it
// immutably.
func (d *DC) materializeLocked(id txn.ObjectID, at vclock.Vector) wire.ObjectState {
	obj, err := d.coord.Read(id, at, store.ReadOptions{})
	if err != nil {
		return wire.ObjectState{ID: id, Vec: at.Clone()}
	}
	return wire.ObjectState{ID: id, Kind: obj.Kind(), Object: obj, Vec: at.Clone()}
}

// notifySubscribersLocked propagates the newly K-stable suffix of the log to
// subscribers, in causal (log) order. The scan stops at the first
// not-yet-stable transaction so pushes never reorder causally related
// updates.
//
// Sharded (the default), the whole subscriber population costs one fanout
// scan: each new transaction is routed to the interest shards whose bucket
// set it touches, and the bounded shard-worker pool filters, seals and ships
// one frame per shard outside d.mu. broadcast marks stability-only triggers
// (heartbeat tick, gossip receipt): only then is a pure cut advance fanned
// to every shard — between broadcasts, subscribers learn new cuts from the
// frames that carry their transactions.
//
// Per-subscriber (Config.PerSubscriberPush) keeps PR 3's pipelined model —
// the scan appends the unfiltered run to each subscriber's outbox and wakes
// its worker. Inline, the legacy behaviour — filter and send under d.mu — is
// preserved for A/B comparison.
func (d *DC) notifySubscribersLocked(broadcast bool) {
	if len(d.subs) == 0 {
		return
	}
	stable := d.mesh.KStable(d.cfg.K)
	if d.fan != nil {
		d.fan.scan(stable, broadcast)
		return
	}
	for _, sub := range d.subs {
		if d.cfg.Inline {
			d.pushInlineLocked(sub, stable)
			continue
		}
		var batch []*txn.Transaction
		idx := sub.logIdx
		for idx < len(d.log) {
			t := d.log[idx]
			if !t.VisibleAt(stable) {
				break
			}
			idx++
			batch = append(batch, t) // unfiltered; the worker restricts
		}
		// KStable is monotone, so sub.stable (a previous cut) is always ≤
		// stable; enqueue when there is anything new to say.
		if len(batch) == 0 && sub.stable.Equal(stable) {
			continue
		}
		sub.logIdx = idx
		// KStable builds a fresh vector per call and nothing downstream
		// mutates a cut in place, so every subscriber shares this one.
		sub.stable = stable
		sub.outMu.Lock()
		sub.pending = append(sub.pending, batch...)
		sub.pendingStable = stable
		sub.outMu.Unlock()
		d.pushDepth.Add(int64(len(batch)))
		sub.signal()
	}
}

// pushInlineLocked is the pre-pipeline push: filter and send under d.mu.
func (d *DC) pushInlineLocked(sub *subscription, stable vclock.Vector) {
	var batch []*txn.Transaction
	idx := sub.logIdx
	for idx < len(d.log) {
		t := d.log[idx]
		if !t.VisibleAt(stable) {
			break
		}
		idx++
		if filtered := t.RestrictShared(func(u txn.Update) bool { return sub.interest[u.Object] }); filtered != nil {
			batch = append(batch, filtered)
		}
	}
	if len(batch) == 0 && sub.stable.Equal(stable) {
		return
	}
	msg := wire.SealPushFrame(d.cfg.Name, batch, stable)
	d.obsPushBatch.Observe(int64(len(batch)))
	if err := d.node.Send(sub.node, msg); err != nil {
		// Subscriber unreachable (offline or migrated): leave the cursor
		// in place; the next trigger retries, and a Resume subscribe
		// rewinds it if the node reconnects elsewhere.
		return
	}
	sub.logIdx = idx
	sub.stable = stable
}

// runPushWorker drains one subscriber's outbox until the subscription or the
// DC is torn down.
func (d *DC) runPushWorker(sub *subscription) {
	defer d.pipeWG.Done()
	for {
		select {
		case <-d.pipeStop:
			return
		case <-sub.stop:
			return
		case <-sub.notify:
			d.flushSub(sub)
		}
	}
}

// flushSub filters and ships everything pending for one subscriber. outMu is
// held across the pop+send so a concurrent rewind (subscribe with Resume,
// fetchObject, RecheckVisibility) can never interleave between consuming the
// outbox and handing its contents to the network; sends themselves only
// schedule delivery, so the hold is short. Transactions whose interest
// restriction is empty are dropped here — same fate the inline path gave
// them at scan time.
func (d *DC) flushSub(sub *subscription) {
	sub.outMu.Lock()
	defer sub.outMu.Unlock()
	for len(sub.pending) > 0 || (sub.pendingStable != nil && !sub.pendingStable.Equal(sub.sentStable)) {
		pending := sub.pending
		sub.pending = nil
		stable := sub.pendingStable
		d.pushDepth.Add(-int64(len(pending)))
		var batch []*txn.Transaction
		for _, t := range pending {
			if filtered := t.RestrictShared(func(u txn.Update) bool { return sub.interest[u.Object] }); filtered != nil {
				batch = append(batch, filtered)
			}
		}
		if len(batch) == 0 && stable.Equal(sub.sentStable) {
			continue
		}
		// The frame shares the stable cut and filtered views read-only
		// (sealed frame contract); no per-subscriber clones.
		msg := wire.SealPushFrame(d.cfg.Name, batch, stable)
		d.obsPushBatch.Observe(int64(len(batch)))
		if err := d.node.Send(sub.node, msg); err != nil {
			// Subscriber unreachable: requeue and stop; the next commit or
			// heartbeat signals a retry, and a Resume subscribe rewinds the
			// cursor if the node reconnects elsewhere.
			sub.pending = append(pending, sub.pending...)
			d.pushDepth.Add(int64(len(pending)))
			return
		}
		sub.sentStable = stable
	}
}

// --- migrated transactions (paper §3.9) ---

// runMigrated executes a transaction shipped from an edge node against this
// DC, at the client's own snapshot. The transaction body arrives either as a
// local closure (simnet) or as a registered program name plus arguments (the
// wire form); Touches carries the migrating user's interest set so a partial
// DC backfills exactly those buckets before the body runs.
func (d *DC) runMigrated(m wire.MigratedTx) any {
	fn := m.Fn
	if fn == nil {
		prog, ok := wire.LookupProgram(m.Name)
		if !ok {
			return wire.MigratedTxAck{Err: fmt.Sprintf("dc: unknown migrated program %q", m.Name)}
		}
		args := m.Args
		fn = func(read wire.TxReader, update wire.TxUpdater) error {
			return prog(args, read, update)
		}
	}
	if err := d.EnsureBuckets(bucketsOfIDs(m.Touches)...); err != nil {
		return wire.MigratedTxAck{Err: err.Error()}
	}
	d.mu.Lock()
	snap := m.Snapshot.Clone()
	if snap == nil {
		// A cloud client without local state reads the DC's current state.
		snap = d.state.Clone()
	} else if !m.Snapshot.LEQ(d.state) {
		d.mu.Unlock()
		return wire.MigratedTxAck{Err: ErrIncompatible.Error()}
	}
	dot := vclock.Dot{Node: d.cfg.Name, Seq: d.lamport.Next()}
	d.mu.Unlock()

	t := &Tx{dc: d, dot: dot, snapshot: snap, actor: m.Actor}
	read := func(id txn.ObjectID) (crdt.Object, error) { return t.Read(id) }
	update := func(id txn.ObjectID, kind crdt.Kind, op crdt.Op) error {
		t.Update(id, kind, op)
		return nil
	}
	if err := fn(read, update); err != nil {
		return wire.MigratedTxAck{Err: err.Error()}
	}
	stamps, err := t.Commit()
	if err != nil {
		return wire.MigratedTxAck{Err: err.Error()}
	}
	return wire.MigratedTxAck{Commit: stamps}
}

// --- maintenance ---

// RecheckVisibility re-evaluates the visibility of every recorded
// transaction against the current check — called after a security-policy
// change, since ACL updates can retroactively mask (or unmask) versions
// (paper §5.3: the policy exposes "a variable-size window" of the TCC+
// store). Subscriber cursors are re-anchored at their stable cuts.
func (d *DC) RecheckVisibility() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.masked = make(map[vclock.Dot]*txn.Transaction)
	d.log = d.log[:0]
	for _, t := range d.replLog {
		if d.passesVisibilityLocked(t) {
			d.log = append(d.log, t)
		} else {
			d.masked[t.Dot] = t
		}
	}
	// Rewind every subscriber to the start of the log: retroactively
	// unmasked transactions were never delivered, and subscribers
	// deduplicate replays by dot. Pipelined outboxes are discarded — they may
	// hold transactions the new policy masks, and the rescan below re-enqueues
	// everything still visible. Sharded, the log rebuild shifted every index,
	// so the fanout generation is bumped (in-flight flushes of the old
	// generation abandon their cursors) and every cursor restarts at zero.
	var gen uint64
	if d.fan != nil {
		gen = d.fan.reset()
	}
	for _, sub := range d.subs {
		sub.logIdx = 0
		if d.cfg.Inline {
			continue
		}
		sub.outMu.Lock()
		if d.fan != nil {
			sub.deliveredIdx = 0
			sub.fanGen = gen
		}
		d.pushDepth.Add(-int64(len(sub.pending)))
		sub.pending = nil
		sub.outMu.Unlock()
	}
	d.notifySubscribersLocked(false)
}

// Compact folds journal entries below the current stable cut into base
// versions on every shard (paper §4.1). Dots are retained so duplicate
// filtering keeps working across migrations. Partial mode folds per bucket,
// each at its own K-stability frontier.
func (d *DC) Compact() error {
	if d.partial {
		return d.coord.AdvanceBuckets(d.bucketCutFor)
	}
	return d.coord.Advance(d.Stable(), true)
}

// MaxJournalLen reports the longest object journal across the DC's storage
// shards — the figure AutoAdvanceThreshold bounds (exposed for tests and
// monitoring).
func (d *DC) MaxJournalLen() int {
	return d.coord.MaxJournalLen()
}

// LogLen reports the number of visible transactions recorded at this DC
// (exposed for tests and monitoring).
func (d *DC) LogLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.log)
}

// MaskedCount reports how many transactions the visibility check has masked.
func (d *DC) MaskedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.masked)
}

// ReadAt materialises an object at an arbitrary cut (used by tests and the
// benchmark harness).
func (d *DC) ReadAt(id txn.ObjectID, at vclock.Vector) (crdt.Object, error) {
	return d.coord.Read(id, at, store.ReadOptions{})
}
