module colony

go 1.22
