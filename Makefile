GO ?= go

.PHONY: all build test test-race vet check ci bench-store bench-vclock bench-fig4 bench-obs

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The store, dc, edge and obs packages carry the concurrency-heavy code
# (sharded store locks, background base advancement, ClockSI 2PC, lock-free
# edge stats, the event bus); run them under the race detector on every
# check.
test-race:
	$(GO) test -race ./internal/store ./internal/dc ./internal/edge ./internal/obs

vet:
	$(GO) vet ./...

check: build vet test test-race

# The continuous-integration gate: static checks, racy packages under the
# race detector, then everything else.
ci: vet test-race build test

# Read-path microbenchmarks: materialisation cache on/off over journal
# depths, parallel readers over shards, incremental advancing-cut reads.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStore -benchmem ./internal/store

bench-vclock:
	$(GO) test -run xxx -bench BenchmarkVector -benchmem ./internal/vclock

# Repository-level figure benchmarks (reduced configurations).
bench-fig4:
	$(GO) test -run xxx -bench BenchmarkFig4 -benchtime 3x .

# Instrumentation overhead on the cached read path: obs=false vs obs=true
# must stay within a few percent of each other (see DESIGN.md
# § Observability).
bench-obs:
	$(GO) test -run xxx -bench BenchmarkStoreReadObs -benchmem ./internal/store
