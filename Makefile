GO ?= go

.PHONY: all build test test-race vet check bench-store bench-vclock bench-fig4

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The store and dc packages carry the concurrency-heavy code (sharded store
# locks, background base advancement, ClockSI 2PC); run them under the race
# detector on every check.
test-race:
	$(GO) test -race ./internal/store ./internal/dc

vet:
	$(GO) vet ./...

check: build vet test test-race

# Read-path microbenchmarks: materialisation cache on/off over journal
# depths, parallel readers over shards, incremental advancing-cut reads.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStore -benchmem ./internal/store

bench-vclock:
	$(GO) test -run xxx -bench BenchmarkVector -benchmem ./internal/vclock

# Repository-level figure benchmarks (reduced configurations).
bench-fig4:
	$(GO) test -run xxx -bench BenchmarkFig4 -benchtime 3x .
