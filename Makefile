GO ?= go

.PHONY: all build test test-race vet check ci bench-store bench-vclock bench-fig4 bench-obs bench-pipeline bench-crdt bench-fanout bench-net bench-tree bench-partial

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The crdt, store, dc, edge, obs, wal, simnet, transport, wire, group and
# epaxos packages carry the concurrency-heavy code (sealed snapshots shared
# across reader goroutines with COW forks, sharded store locks, background
# base advancement, ClockSI 2PC, lock-free edge stats, the event bus, the
# group-commit WAL writer, the staged DC write pipeline — including the
# ≥8-committer convergence test — the interest-sharded push fan-out with its
# multicast trees (relay crash/repair tests), simnet's pooled
# multi-destination scheduler, the TCP mesh's refcounted frame buffers,
# corked per-conn loops and pending-call table, the replication mesh's
# per-bucket interest/stability vectors, and the peer-group / EPaxos-style
# quorum machinery); run them under the race detector on every check.
test-race:
	$(GO) test -race ./internal/crdt ./internal/store ./internal/dc ./internal/edge ./internal/obs ./internal/wal ./internal/simnet ./internal/transport ./internal/transport/tcp ./internal/wire ./internal/bin ./internal/group ./internal/epaxos ./internal/replication

vet:
	$(GO) vet ./...

check: build vet test test-race

# The continuous-integration gate: static checks, racy packages under the
# race detector, then everything else.
ci: vet test-race build test

# Read-path microbenchmarks: materialisation cache on/off over journal
# depths, parallel readers over shards, incremental advancing-cut reads.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStore -benchmem ./internal/store

bench-vclock:
	$(GO) test -run xxx -bench BenchmarkVector -benchmem ./internal/vclock

# Repository-level figure benchmarks (reduced configurations).
bench-fig4:
	$(GO) test -run xxx -bench BenchmarkFig4 -benchtime 3x .

# A/B of the DC write path: legacy inline (per-tx replication fan-out, fsync
# per commit) vs the staged pipeline (per-peer batched senders, group-commit
# WAL, async push workers). Records the comparison to BENCH_pipeline.json at
# the repo root; acceptance requires the pipelined path >=2x.
bench-pipeline:
	$(GO) test -run TestRecordPipelineBench -count=1 -v ./internal/dc -record-pipeline

# Instrumentation overhead on the cached read path: obs=false vs obs=true
# must stay within a few percent of each other (see DESIGN.md
# § Observability).
bench-obs:
	$(GO) test -run xxx -bench BenchmarkStoreReadObs -benchmem ./internal/store

# A/B of the DC push fan-out: per-subscriber (one goroutine, one filter pass
# and one cloned frame per subscriber) vs interest-sharded (one filter pass
# and one sealed shared frame per shard, bounded worker pool) at 1k/10k/100k
# Zipf-skewed subscribers. Records the comparison to BENCH_fanout.json at
# the repo root; acceptance requires the sharded path >=5x delivered-txs/s
# at 100k and zero delivery-order/interest violations in both modes.
bench-fanout:
	$(GO) run ./cmd/colony-bench fanout

# A/B of the RGA read/materialisation hot path: legacy recursive-tree kernel
# with deep-clone reads vs the indexed COW kernel with sealed snapshots and
# cursor-resolved typing bursts, at 1k/10k/100k elements, plus the zero-alloc
# cached snapshot read. Records the comparison to BENCH_crdt.json at the repo
# root; acceptance requires >=2x at 10k and 0 allocs/op on the cached read.
bench-crdt:
	$(GO) test -run TestRecordCRDTBench -count=1 -v ./internal/crdt -record-crdt

# A/B of the transport substrate: replication throughput (commit burst to
# cluster-wide convergence, 3 DCs) on simnet vs the real TCP mesh on
# loopback with the binary wire codec. Records the comparison to
# BENCH_net.json at the repo root.
bench-net:
	$(GO) test -run TestRecordNetBench -count=1 -v ./internal/transport/tcp -record-net

# A/B of the push multicast layer: direct sharded fan-out (one frame per
# subscriber per flush) vs two-level multicast trees (one frame per subtree
# root, relays re-fan the sealed frame to ≤degree children, cursor/repair
# fallback on relay failure) at 1k/10k/100k relay-capable subscribers with
# workspace-structured interest. Records the comparison to BENCH_tree.json
# at the repo root; acceptance requires >=5x fewer DC-sent units at 100k,
# delivered tx/s within 20% of direct, and zero violations in both modes.
bench-tree:
	$(GO) run ./cmd/colony-bench tree

# A/B of the replication scope: full mesh (every DC receives every payload)
# vs interest-scoped partial replication (per-bucket replication vectors,
# payload-stripped stubs for unwanted buckets, on-demand backfill) at
# 64/512/4096-bucket universes with a shared Zipf hot set and per-DC cold
# thirds. Records the comparison to BENCH_partial.json at the repo root;
# acceptance requires >=5x fewer WAN units at 4096 buckets, per-DC residency
# proportional to the interest share, tx/s within 10% of full, and zero
# convergence violations in both modes.
bench-partial:
	$(GO) run ./cmd/colony-bench partial
