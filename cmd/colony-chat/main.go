// Command colony-chat is an interactive ColonyChat client: it boots a
// Colony deployment with a peer group, a simulated teammate and a reactive
// bot, and drops you into a tiny REPL where you can chat, go offline, come
// back, and migrate between DCs — watching consistency, availability and
// convergence behave as the paper promises.
//
//	colony-chat
//	> post hello team
//	> read
//	> offline
//	> post drafted while offline
//	> online
//	> read
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"colony/internal/chat"
	"colony/internal/core"
	"colony/internal/group"
)

const (
	workspace = "ws0"
	channel   = "general"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colony-chat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colony-chat", flag.ContinueOnError)
	var (
		user  = fs.String("user", "you", "your user name")
		scale = fs.Float64("scale", 0.1, "latency scale")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cluster, err := core.NewCluster(core.ClusterConfig{
		DCs: 3, K: 2, Profile: core.PaperProfile(), Scale: *scale,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	parent := group.NewParent(cluster.Network().Transport(), group.ParentConfig{Name: "pop0", DC: cluster.DCName(0)})
	defer parent.Close()
	if err := parent.Connect(); err != nil {
		return err
	}

	mk := func(name string) (*chat.EdgeClient, error) {
		conn, err := cluster.Connect(core.ConnectOptions{Name: name + "-device", User: name})
		if err != nil {
			return nil, err
		}
		if err := conn.JoinGroup("pop0", group.VariantAsync); err != nil {
			conn.Close()
			return nil, err
		}
		ec := chat.NewEdgeClient(conn)
		if err := ec.Prefetch(workspace, channel); err != nil {
			conn.Close()
			return nil, err
		}
		if err := ec.JoinWorkspace(workspace); err != nil {
			conn.Close()
			return nil, err
		}
		return ec, nil
	}

	me, err := mk(*user)
	if err != nil {
		return err
	}
	defer me.Conn().Close()
	teammate, err := mk("sam")
	if err != nil {
		return err
	}
	defer teammate.Conn().Close()
	botClient, err := mk("echobot")
	if err != nil {
		return err
	}
	defer botClient.Conn().Close()
	_ = chat.NewBot(botClient, workspace, channel, 0.5, time.Now().UnixNano())

	// The simulated teammate chimes in occasionally.
	stopSam := make(chan struct{})
	samDone := make(chan struct{})
	go func() {
		defer close(samDone)
		ticker := time.NewTicker(7 * time.Second)
		defer ticker.Stop()
		i := 0
		for {
			select {
			case <-ticker.C:
				i++
				_ = teammate.Post(workspace, channel, fmt.Sprintf("status update #%d", i))
			case <-stopSam:
				return
			}
		}
	}()
	defer func() { close(stopSam); <-samDone }()

	fmt.Printf("connected as %s — workspace %s, channel #%s (peer group pop0)\n", *user, workspace, channel)
	fmt.Println("commands: post <text> | read | offline | online | migrate <dc#> | stats | quit")

	offline := false
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "", "#":
		case "post":
			if err := me.Post(workspace, channel, rest); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("committed locally" + offlineSuffix(offline))
		case "read":
			msgs, src, err := me.ReadChannel(workspace, channel)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("#%s (%d messages, %s hit):\n", channel, len(msgs), src)
			start := 0
			if len(msgs) > 10 {
				start = len(msgs) - 10
				fmt.Printf("  … %d earlier messages\n", start)
			}
			for _, m := range msgs[start:] {
				fmt.Printf("  <%s> %s\n", m.Author, m.Text)
			}
		case "offline":
			cluster.Network().Isolate(me.Conn().Name())
			offline = true
			fmt.Println("device isolated — reads and commits stay available locally")
		case "online":
			cluster.Network().Rejoin(me.Conn().Name())
			offline = false
			fmt.Println("device reconnected — the pipeline drains and pushes resume")
		case "migrate":
			var dcIdx int
			if _, err := fmt.Sscanf(rest, "%d", &dcIdx); err != nil || dcIdx < 0 || dcIdx >= cluster.NumDCs() {
				fmt.Printf("usage: migrate <0..%d>\n", cluster.NumDCs()-1)
				continue
			}
			if err := me.Conn().LeaveGroup(dcIdx); err != nil && err != core.ErrNotInGroup {
				fmt.Println("error:", err)
				continue
			}
			if err := me.Conn().MigrateDC(dcIdx); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("migrated to %s (left the peer group)\n", cluster.DCName(dcIdx))
		case "stats":
			st := me.Conn().Node().Stats()
			fmt.Printf("reads=%d cache=%d group=%d dc=%d | committed=%d acked=%d unacked=%d\n",
				st.Reads, st.CacheHits, st.GroupHits, st.DCFetches,
				st.TxCommitted, st.TxAcked, me.Conn().Node().UnackedCount())
			fmt.Printf("state=%v stable=%v\n", me.Conn().State(), me.Conn().Node().StableVector())
		case "quit", "exit":
			return nil
		default:
			fmt.Println("commands: post <text> | read | offline | online | migrate <dc#> | stats | quit")
		}
	}
}

func offlineSuffix(offline bool) string {
	if offline {
		return " (offline — will sync on reconnect)"
	}
	return ""
}
