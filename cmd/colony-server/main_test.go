package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// reservePorts grabs n distinct loopback ports by binding and releasing
// them. There is an inherent race between release and reuse, but the window
// is tiny and the kernel hands out fresh ephemeral ports.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestThreeProcessMeshConvergence is the deployment-mode e2e: build the real
// binary, spawn three colony-server processes forming a TCP mesh on
// loopback, have each commit a workload, and assert via /status that all
// three converge on the same counter total and state vector.
func TestThreeProcessMeshConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "colony-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	const (
		nProcs = 3
		perDC  = 30
	)
	ports := reservePorts(t, 2*nProcs)
	meshAddrs := ports[:nProcs]
	httpAddrs := ports[nProcs:]

	procs := make([]*exec.Cmd, nProcs)
	for i := 0; i < nProcs; i++ {
		peers := ""
		for j := 0; j < nProcs; j++ {
			if j == i {
				continue
			}
			if peers != "" {
				peers += ","
			}
			peers += fmt.Sprintf("dc%d=%s", j, meshAddrs[j])
		}
		cmd := exec.Command(bin,
			"-listen", meshAddrs[i],
			"-index", fmt.Sprint(i),
			"-peers", peers,
			"-metrics", httpAddrs[i],
			"-workload", fmt.Sprint(perDC),
			"-k", "2",
			"-shards", "2",
			"-status", "500ms",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start dc%d: %v", i, err)
		}
		procs[i] = cmd
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	type status struct {
		Name         string   `json:"name"`
		State        []uint64 `json:"state"`
		Counter      int64    `json:"counter"`
		WorkloadDone bool     `json:"workload_done"`
	}
	fetch := func(i int) (status, error) {
		var st status
		resp, err := http.Get(fmt.Sprintf("http://%s/status", httpAddrs[i]))
		if err != nil {
			return st, err
		}
		defer resp.Body.Close()
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}

	want := int64(nProcs * perDC)
	deadline := time.Now().Add(60 * time.Second)
	for {
		converged := true
		var states [][]uint64
		for i := 0; i < nProcs; i++ {
			st, err := fetch(i)
			if err != nil || !st.WorkloadDone || st.Counter != want {
				converged = false
				break
			}
			states = append(states, st.State)
		}
		if converged {
			for i := 1; i < len(states); i++ {
				if !reflect.DeepEqual(states[i], states[0]) {
					converged = false
					break
				}
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < nProcs; i++ {
				st, err := fetch(i)
				t.Logf("dc%d: %+v (err %v)", i, st, err)
			}
			t.Fatal("mesh did not converge within 60s")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Metrics endpoint serves alongside /status (the README's curl check).
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", httpAddrs[0]))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
}
