// Command colony-server hosts a Colony deployment — a mesh of core-cloud
// DCs with optional peer-group parents (PoPs) — on the simulated network,
// and reports its state periodically until interrupted. It is the
// stand-alone "infrastructure side" used when poking at the system manually;
// the paper's real deployment maps each of these components to a Docker
// container (§7.2).
//
// The deployment's instrumentation registry is served over HTTP:
// Prometheus-style text at /metrics, expvar JSON at /debug/vars.
//
//	colony-server -dcs 3 -k 2 -pops 2 -scale 0.1 -metrics :8080
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"colony/internal/core"
	"colony/internal/group"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colony-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colony-server", flag.ContinueOnError)
	var (
		dcs     = fs.Int("dcs", 3, "number of core-cloud data centres")
		k       = fs.Int("k", 2, "K-stability threshold for edge visibility")
		shards  = fs.Int("shards", 4, "storage servers per DC")
		pops    = fs.Int("pops", 1, "peer-group parents (PoP servers) to host")
		scale   = fs.Float64("scale", 0.1, "latency scale")
		every   = fs.Duration("status", 2*time.Second, "status report period")
		deny    = fs.Bool("deny-by-default", false, "ACL denies unlisted objects")
		adv     = fs.Int("auto-advance", 256, "journal length that triggers background base advancement (0 disables)")
		metrics = fs.String("metrics", ":8080", "HTTP address for /metrics and /debug/vars (empty disables)")
		datadir = fs.String("datadir", "", "directory for per-DC write-ahead logs (empty disables persistence)")
		syncw   = fs.Bool("syncwrites", false, "commit acks wait for WAL durability (group-committed; needs -datadir)")
		inline  = fs.Bool("inline", false, "disable the staged write pipeline (serial per-tx baseline)")
		persub  = fs.Bool("persub", false, "per-subscriber push fan-out instead of interest shards (A/B baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cluster, err := core.NewCluster(core.ClusterConfig{
		DCs: *dcs, ShardsPerDC: *shards, K: *k,
		Profile: core.PaperProfile(), Scale: *scale,
		DenyByDefault:        *deny,
		AutoAdvanceThreshold: *adv,
		DataDir:              *datadir,
		SyncWrites:           *syncw,
		InlineWritePath:      *inline,
		PerSubscriberPush:    *persub,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	var parents []*group.Parent
	for i := 0; i < *pops; i++ {
		p := group.NewParent(cluster.Network(), group.ParentConfig{
			Name: fmt.Sprintf("pop%d", i),
			DC:   cluster.DCName(i % *dcs),
			Obs:  cluster.Obs(),

			AutoAdvanceThreshold: *adv,
		})
		if err := p.Connect(); err != nil {
			p.Close()
			return err
		}
		defer p.Close()
		parents = append(parents, p)
	}

	if *metrics != "" {
		reg := cluster.Obs()
		reg.PublishExpvar("colony")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars)\n", ln.Addr())
	}

	fmt.Printf("colony-server: %d DCs (K=%d, %d shards each), %d PoPs, scale %.2f\n",
		*dcs, *k, *shards, *pops, *scale)
	fmt.Println("press Ctrl-C to stop")

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			snap := cluster.Obs().Snapshot()
			fmt.Printf("[%s] net: %d sent / %d delivered / %d dropped / %d in flight\n",
				time.Now().Format("15:04:05"),
				snap.Counters["net.sent"], snap.Counters["net.delivered"],
				snap.Counters["net.dropped"], snap.Gauges["net.in_flight"])
			if rate := snap.CacheHitRate(); rate >= 0 {
				fmt.Printf("  cache: %.1f%% hit rate, max journal %d, %d base advancements\n",
					100*rate, snap.Gauges["store.max_journal_len"], snap.Counters["store.base_advance"])
			}
			if kst, ok := snap.Histograms["edge.commit_to_kstable_ns"]; ok && kst.Count > 0 {
				fmt.Printf("  commit→K-stable: p50=%s p95=%s p99=%s (n=%d)\n",
					time.Duration(kst.P50), time.Duration(kst.P95), time.Duration(kst.P99), kst.Count)
			}
			if rb, ok := snap.Histograms["dc.repl_batch_txs"]; ok && rb.Count > 0 {
				fmt.Printf("  write pipeline: repl batch p50=%d p95=%d, outbox repl=%d push=%d, fsyncs=%d\n",
					rb.P50, rb.P95,
					snap.Gauges["dc.repl_outbox_depth"], snap.Gauges["dc.push_outbox_depth"],
					snap.Counters["wal.fsyncs"])
			}
			for i := 0; i < cluster.NumDCs(); i++ {
				d := cluster.DC(i)
				fmt.Printf("  %s: state=%v stable=%v log=%d masked=%d\n",
					d.Name(), d.State(), d.Stable(), d.LogLen(), d.MaskedCount())
				if err := d.LastWALError(); err != nil {
					fmt.Printf("  %s: WAL ERROR (durability degraded): %v\n", d.Name(), err)
				}
			}
			for _, p := range parents {
				fmt.Printf("  %s: members=%v vislog=%d\n",
					p.Name(), p.Members(), p.VisibilityLogLen())
			}
		case <-sigs:
			fmt.Println("\nshutting down")
			return nil
		}
	}
}
