// Command colony-server hosts a Colony deployment — a mesh of core-cloud
// DCs with optional peer-group parents (PoPs) — on the simulated network,
// and reports its state periodically until interrupted. It is the
// stand-alone "infrastructure side" used when poking at the system manually;
// the paper's real deployment maps each of these components to a Docker
// container (§7.2).
//
// The deployment's instrumentation registry is served over HTTP:
// Prometheus-style text at /metrics, expvar JSON at /debug/vars.
//
//	colony-server -dcs 3 -k 2 -pops 2 -scale 0.1 -metrics :8080
//
// With -listen the server instead hosts ONE real DC on a TCP mesh
// (internal/transport/tcp): each process is a data centre, -peers names the
// others, and replication crosses real sockets through the binary wire
// codec. A JSON state report is served at /status next to /metrics:
//
//	colony-server -listen 127.0.0.1:7000 -index 0 \
//	    -peers dc1=127.0.0.1:7001,dc2=127.0.0.1:7002 -metrics :8080
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"colony/internal/core"
	"colony/internal/crdt"
	"colony/internal/dc"
	"colony/internal/group"
	"colony/internal/obs"
	"colony/internal/transport/tcp"
	"colony/internal/txn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colony-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colony-server", flag.ContinueOnError)
	var (
		dcs     = fs.Int("dcs", 3, "number of core-cloud data centres")
		k       = fs.Int("k", 2, "K-stability threshold for edge visibility")
		shards  = fs.Int("shards", 4, "storage servers per DC")
		pops    = fs.Int("pops", 1, "peer-group parents (PoP servers) to host")
		scale   = fs.Float64("scale", 0.1, "latency scale")
		every   = fs.Duration("status", 2*time.Second, "status report period")
		deny    = fs.Bool("deny-by-default", false, "ACL denies unlisted objects")
		adv     = fs.Int("auto-advance", 256, "journal length that triggers background base advancement (0 disables)")
		metrics = fs.String("metrics", ":8080", "HTTP address for /metrics and /debug/vars (empty disables)")
		datadir = fs.String("datadir", "", "directory for per-DC write-ahead logs (empty disables persistence)")
		syncw   = fs.Bool("syncwrites", false, "commit acks wait for WAL durability (group-committed; needs -datadir)")
		inline  = fs.Bool("inline", false, "disable the staged write pipeline (serial per-tx baseline)")
		persub  = fs.Bool("persub", false, "per-subscriber push fan-out instead of interest shards (A/B baseline)")
		direct  = fs.Bool("directpush", false, "push to every subscriber directly instead of via multicast trees (A/B baseline)")
		treedeg = fs.Int("treedeg", 0, "children per relay in the push multicast trees (0 = default 16)")
		partial = fs.Bool("partial", false, "interest-scoped replication: DCs hold only subscribed buckets, stub the rest, backfill on demand")
		buckets = fs.String("buckets", "", "comma-separated boot-time bucket interest set (with -partial; empty = acquire on demand)")

		listen   = fs.String("listen", "", "TCP mesh listen address; switches to multi-process mode (one real DC per process)")
		peersF   = fs.String("peers", "", "comma-separated dcN=host:port pairs for the other DCs (mesh mode)")
		index    = fs.Int("index", 0, "this DC's index in vector timestamps (mesh mode)")
		workload = fs.Int("workload", 0, "commit this many counter increments after boot, for convergence checks (mesh mode)")
		cork     = fs.Duration("flushdelay", 200*time.Microsecond, "TCP write-loop cork window: idle time to wait for more frames before flushing (mesh mode; 0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var bootBuckets []string
	if *buckets != "" {
		for _, b := range strings.Split(*buckets, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bootBuckets = append(bootBuckets, b)
			}
		}
	}

	if *listen != "" {
		return runMesh(meshOptions{
			listen: *listen, peers: *peersF, index: *index,
			shards: *shards, k: *k, workload: *workload,
			metrics: *metrics, every: *every, datadir: *datadir,
			syncWrites: *syncw, inline: *inline, perSub: *persub,
			directPush: *direct, treeDegree: *treedeg, flushDelay: *cork,
			autoAdvance: *adv, partial: *partial, buckets: bootBuckets,
		})
	}

	clusterCfg := core.ClusterConfig{
		DCs: *dcs, ShardsPerDC: *shards, K: *k,
		Profile: core.PaperProfile(), Scale: *scale,
		DenyByDefault:        *deny,
		AutoAdvanceThreshold: *adv,
		DataDir:              *datadir,
		SyncWrites:           *syncw,
		InlineWritePath:      *inline,
		PerSubscriberPush:    *persub,
		DirectPush:           *direct,
		TreeDegree:           *treedeg,
		PartialRepl:          *partial,
	}
	if *partial && len(bootBuckets) > 0 {
		clusterCfg.DCBuckets = make(map[int][]string, *dcs)
		for i := 0; i < *dcs; i++ {
			clusterCfg.DCBuckets[i] = bootBuckets
		}
	}
	cluster, err := core.NewCluster(clusterCfg)
	if err != nil {
		return err
	}
	defer cluster.Close()

	var parents []*group.Parent
	for i := 0; i < *pops; i++ {
		p := group.NewParent(cluster.Network().Transport(), group.ParentConfig{
			Name: fmt.Sprintf("pop%d", i),
			DC:   cluster.DCName(i % *dcs),
			Obs:  cluster.Obs(),

			AutoAdvanceThreshold: *adv,
		})
		if err := p.Connect(); err != nil {
			p.Close()
			return err
		}
		defer p.Close()
		parents = append(parents, p)
	}

	if *metrics != "" {
		reg := cluster.Obs()
		reg.PublishExpvar("colony")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("metrics: http://%s/metrics (expvar at /debug/vars)\n", ln.Addr())
	}

	fmt.Printf("colony-server: %d DCs (K=%d, %d shards each), %d PoPs, scale %.2f\n",
		*dcs, *k, *shards, *pops, *scale)
	fmt.Println("press Ctrl-C to stop")

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			snap := cluster.Obs().Snapshot()
			fmt.Printf("[%s] net: %d sent / %d delivered / %d dropped / %d in flight\n",
				time.Now().Format("15:04:05"),
				snap.Counters["net.sent"], snap.Counters["net.delivered"],
				snap.Counters["net.dropped"], snap.Gauges["net.in_flight"])
			if rate := snap.CacheHitRate(); rate >= 0 {
				fmt.Printf("  cache: %.1f%% hit rate, max journal %d, %d base advancements\n",
					100*rate, snap.Gauges["store.max_journal_len"], snap.Counters["store.base_advance"])
			}
			if kst, ok := snap.Histograms["edge.commit_to_kstable_ns"]; ok && kst.Count > 0 {
				fmt.Printf("  commit→K-stable: p50=%s p95=%s p99=%s (n=%d)\n",
					time.Duration(kst.P50), time.Duration(kst.P95), time.Duration(kst.P99), kst.Count)
			}
			if rb, ok := snap.Histograms["dc.repl_batch_txs"]; ok && rb.Count > 0 {
				fmt.Printf("  write pipeline: repl batch p50=%d p95=%d, outbox repl=%d push=%d, fsyncs=%d\n",
					rb.P50, rb.P95,
					snap.Gauges["dc.repl_outbox_depth"], snap.Gauges["dc.push_outbox_depth"],
					snap.Counters["wal.fsyncs"])
			}
			for i := 0; i < cluster.NumDCs(); i++ {
				d := cluster.DC(i)
				fmt.Printf("  %s: state=%v stable=%v log=%d masked=%d\n",
					d.Name(), d.State(), d.Stable(), d.LogLen(), d.MaskedCount())
				if err := d.LastWALError(); err != nil {
					fmt.Printf("  %s: WAL ERROR (durability degraded): %v\n", d.Name(), err)
				}
			}
			for _, p := range parents {
				fmt.Printf("  %s: members=%v vislog=%d\n",
					p.Name(), p.Members(), p.VisibilityLogLen())
			}
		case <-sigs:
			fmt.Println("\nshutting down")
			return nil
		}
	}
}

// meshOptions carries the -listen mode's flag values.
type meshOptions struct {
	listen      string
	peers       string
	index       int
	shards      int
	k           int
	workload    int
	metrics     string
	every       time.Duration
	datadir     string
	syncWrites  bool
	inline      bool
	perSub      bool
	directPush  bool
	treeDegree  int
	flushDelay  time.Duration
	autoAdvance int
	partial     bool
	buckets     []string
}

// meshCounterID is the well-known object the -workload driver increments;
// /status reports its value so an external observer (or the e2e test) can
// assert cluster-wide convergence.
var meshCounterID = txn.ObjectID{Bucket: "mesh", Key: "counter"}

// runMesh hosts one real DC on a TCP mesh: the multi-process deployment mode.
func runMesh(o meshOptions) error {
	name := fmt.Sprintf("dc%d", o.index)
	peers := map[int]string{o.index: name}
	addrs := map[string]string{}
	if o.peers != "" {
		for _, pair := range strings.Split(o.peers, ",") {
			nameAddr := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(nameAddr) != 2 {
				return fmt.Errorf("bad -peers entry %q (want dcN=host:port)", pair)
			}
			var idx int
			if _, err := fmt.Sscanf(nameAddr[0], "dc%d", &idx); err != nil {
				return fmt.Errorf("bad peer name %q (want dcN): %w", nameAddr[0], err)
			}
			peers[idx] = nameAddr[0]
			addrs[nameAddr[0]] = nameAddr[1]
		}
	}
	// Indexes must form 0..n-1: vector timestamps are positional.
	for i := 0; i < len(peers); i++ {
		if _, ok := peers[i]; !ok {
			return fmt.Errorf("peer set has a gap: no dc%d among %d DCs", i, len(peers))
		}
	}

	reg := obs.New()
	mesh, err := tcp.New(tcp.Config{
		Name: name, Listen: o.listen, Peers: addrs, Obs: reg,
		FlushDelay: o.flushDelay,
	})
	if err != nil {
		return err
	}
	defer mesh.Close()

	d, err := dc.New(mesh, dc.Config{
		Index:  o.index,
		Name:   name,
		NumDCs: len(peers),
		Shards: o.shards,
		K:      o.k,
		// Real time, real sockets: gossip briskly so convergence does not
		// wait on traffic.
		Heartbeat:            100 * time.Millisecond,
		Obs:                  reg,
		DataDir:              o.datadir,
		SyncWrites:           o.syncWrites,
		Inline:               o.inline,
		PerSubscriberPush:    o.perSub,
		DirectPush:           o.directPush,
		TreeDegree:           o.treeDegree,
		PartialRepl:          o.partial,
		Buckets:              o.buckets,
		AutoAdvanceThreshold: o.autoAdvance,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	d.SetPeers(peers)

	var workloadDone atomic.Bool
	if o.workload > 0 {
		go func() {
			for i := 0; i < o.workload; i++ {
				tx := d.Begin(name)
				tx.Update(meshCounterID, crdt.KindCounter, crdt.Op{Counter: &crdt.CounterOp{Delta: 1}})
				if _, err := tx.Commit(); err != nil {
					fmt.Fprintf(os.Stderr, "workload commit %d: %v\n", i, err)
					return
				}
			}
			workloadDone.Store(true)
		}()
	} else {
		workloadDone.Store(true)
	}

	status := func() meshStatus {
		st := meshStatus{
			Name:         name,
			Index:        o.index,
			NumDCs:       len(peers),
			State:        d.State(),
			Stable:       d.Stable(),
			LogLen:       d.LogLen(),
			WorkloadDone: workloadDone.Load(),
		}
		if obj, err := d.ReadAt(meshCounterID, d.State()); err == nil {
			st.Counter = obj.(*crdt.Counter).Total()
		}
		return st
	}

	if o.metrics != "" {
		reg.PublishExpvar("colony")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(status())
		})
		ln, err := net.Listen("tcp", o.metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("metrics: http://%s/metrics (status at /status)\n", ln.Addr())
	}

	peerNames := make([]string, 0, len(addrs))
	for n := range addrs {
		peerNames = append(peerNames, n)
	}
	sort.Strings(peerNames)
	fmt.Printf("colony-server: %s on TCP mesh %s (K=%d, %d shards), peers %v\n",
		name, mesh.Addr(), o.k, o.shards, peerNames)
	fmt.Println("press Ctrl-C to stop")

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(o.every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			st := status()
			snap := reg.Snapshot()
			fmt.Printf("[%s] %s: state=%v stable=%v log=%d counter=%d | net: %d sent / %d delivered / %d dropped\n",
				time.Now().Format("15:04:05"), name, st.State, st.Stable, st.LogLen, st.Counter,
				snap.Counters["net.sent"], snap.Counters["net.delivered"], snap.Counters["net.dropped"])
		case <-sigs:
			fmt.Println("\nshutting down")
			return nil
		}
	}
}

// meshStatus is the /status JSON document in mesh mode.
type meshStatus struct {
	Name         string   `json:"name"`
	Index        int      `json:"index"`
	NumDCs       int      `json:"num_dcs"`
	State        []uint64 `json:"state"`
	Stable       []uint64 `json:"stable"`
	LogLen       int      `json:"log_len"`
	Counter      int64    `json:"counter"`
	WorkloadDone bool     `json:"workload_done"`
}
