// Command colony-bench regenerates every table and figure of the paper's
// evaluation (§7) on the simulated testbed:
//
//	colony-bench fig4    # throughput vs response time (6 configurations)
//	colony-bench fig5    # DC disconnection timeline
//	colony-bench fig6    # peer-group disconnection timeline
//	colony-bench fig7    # migration / group synchronisation timeline
//	colony-bench claims    # headline numbers (§1, §7.3)
//	colony-bench ablations # K-stability / commit-variant / group-size / cache
//	colony-bench fanout    # push fan-out A/B at 1k/10k/100k subscribers
//	colony-bench tree      # tree-multicast vs direct-sharded A/B (DC egress)
//	colony-bench partial   # full vs interest-scoped replication A/B (WAN units)
//	colony-bench all       # everything, in order (fanout/tree/partial excluded:
//	                       # run them explicitly or via make bench-fanout /
//	                       # bench-tree / bench-partial)
//
// Output is printed as aligned tables plus CSV blocks that plot directly.
// --scale accelerates the modelled network (0.1 = 10× faster than the
// paper's wall-clock; results are reported in model time).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"colony/internal/bench"
	"colony/internal/edge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colony-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colony-bench", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", 0.1, "latency scale (0.1 = 10x accelerated)")
		maxClients = fs.Int("max-clients", 256, "largest client count in the fig4 sweep")
		actions    = fs.Int("actions", 20, "closed-loop actions per client (fig4)")
		duration   = fs.Duration("duration", 70*time.Second, "timeline length in model time (fig5-7)")
		seed       = fs.Int64("seed", 1, "workload seed")
		quick      = fs.Bool("quick", false, "small configurations for a fast sanity run")
		obsDump    = fs.Bool("obs", true, "print the per-run instrumentation snapshot after each fig4 point")
		inline     = fs.Bool("inline", false, "run the DCs on the serial pre-pipeline write path (A/B baseline)")
		fanSizes   = fs.String("fanout-sizes", "1000,10000,100000", "comma-separated subscriber populations for the fanout A/B")
		fanCommits = fs.Int("fanout-commits", 64, "transactions committed per fanout run")
		fanOut     = fs.String("fanout-out", "BENCH_fanout.json", "output file for the fanout A/B record")
		treeSizes  = fs.String("tree-sizes", "1000,10000,100000", "comma-separated subscriber populations for the tree A/B")
		treeDeg    = fs.Int("tree-degree", 16, "children per subtree root")
		treeOut    = fs.String("tree-out", "BENCH_tree.json", "output file for the tree A/B record")
		partSizes  = fs.String("partial-buckets", "64,512,4096", "comma-separated bucket universes for the partial-replication A/B")
		partTxs    = fs.Int("partial-commits", 6000, "transactions committed per partial run")
		partOut    = fs.String("partial-out", "BENCH_partial.json", "output file for the partial-replication A/B record")
		fullRepl   = fs.Bool("fullrepl", false, "partial: run only the full-replication baseline (no A/B, no acceptance checks)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := "all"
	if fs.NArg() > 0 {
		cmd = fs.Arg(0)
	}
	if *quick {
		*maxClients = 32
		*actions = 10
		*duration = 20 * time.Second
		*fanSizes = "500,2000"
		*treeSizes = "500,2000"
		*partSizes = "64,512"
		*partTxs = 1500
	}

	progress := func(msg string) { fmt.Fprintf(os.Stderr, "… %s\n", msg) }

	fig4cfg := bench.Fig4Config{
		ClientCounts:     clientSweep(*maxClients),
		ActionsPerClient: *actions,
		Scale:            *scale,
		Seed:             *seed,
		InlineWritePath:  *inline,
	}
	tlcfg := bench.TimelineConfig{
		Duration:    *duration,
		FirstEvent:  *duration * 25 / 70,
		SecondEvent: *duration * 45 / 70,
		Scale:       *scale,
		Seed:        *seed,
	}

	var fig4 []bench.Fig4Point
	var fig5 *bench.TimelineResult
	switch cmd {
	case "fig4":
		pts, err := bench.RunFig4(fig4cfg, progress)
		if err != nil {
			return err
		}
		printFig4(pts, *obsDump)
	case "fig5":
		res, err := bench.RunFig5(tlcfg, progress)
		if err != nil {
			return err
		}
		printTimeline("Figure 5 — impact of a DC disconnection", res)
	case "fig6":
		res, err := bench.RunFig6(tlcfg, progress)
		if err != nil {
			return err
		}
		printTimeline("Figure 6 — impact of a peer-group disconnection", res)
	case "fig7":
		res, err := bench.RunFig7(tlcfg, progress)
		if err != nil {
			return err
		}
		printTimeline("Figure 7 — synchronising with a peer group", res)
	case "ablations":
		return runAblations(*scale, *seed)
	case "fanout":
		return runFanout(*fanSizes, *fanCommits, *fanOut, *seed, progress)
	case "tree":
		return runTree(*treeSizes, *fanCommits, *treeDeg, *treeOut, *seed, progress)
	case "partial":
		return runPartial(*partSizes, *partTxs, *partOut, *fullRepl, *seed, progress)
	case "claims", "all":
		pts, err := bench.RunFig4(fig4cfg, progress)
		if err != nil {
			return err
		}
		fig4 = pts
		res5, err := bench.RunFig5(tlcfg, progress)
		if err != nil {
			return err
		}
		fig5 = res5
		if cmd == "all" {
			printFig4(fig4, *obsDump)
			printTimeline("Figure 5 — impact of a DC disconnection", fig5)
			res6, err := bench.RunFig6(tlcfg, progress)
			if err != nil {
				return err
			}
			printTimeline("Figure 6 — impact of a peer-group disconnection", res6)
			res7, err := bench.RunFig7(tlcfg, progress)
			if err != nil {
				return err
			}
			printTimeline("Figure 7 — synchronising with a peer group", res7)
		}
		printClaims(bench.DeriveClaims(fig4, fig5))
	default:
		return fmt.Errorf("unknown command %q (fig4|fig5|fig6|fig7|claims|ablations|fanout|tree|partial|all)", cmd)
	}
	return nil
}

// runAblations prints the design-choice studies of DESIGN.md §6.
func runAblations(scale float64, seed int64) error {
	fmt.Println("\n== Ablation: K-stability threshold (§3.8) ==")
	fmt.Printf("%4s %22s %22s\n", "K", "visibility median(ms)", "visibility p95(ms)")
	ks, err := bench.AblationKStability(nil, 20, scale, seed)
	if err != nil {
		return err
	}
	for _, r := range ks {
		fmt.Printf("%4d %22.1f %22.1f\n", r.K, r.VisibilityLag.MedianMs, r.VisibilityLag.P95Ms)
	}

	fmt.Println("\n== Ablation: peer-group commit variant (§5.1.4) ==")
	fmt.Printf("%8s %18s %18s\n", "variant", "commit median(ms)", "commit p95(ms)")
	cv, err := bench.AblationCommitVariant(4, 30, scale, seed)
	if err != nil {
		return err
	}
	for _, r := range cv {
		fmt.Printf("%8s %18.2f %18.2f\n", r.Variant, r.Commit.MedianMs, r.Commit.P95Ms)
	}

	fmt.Println("\n== Ablation: peer-group size ==")
	fmt.Printf("%6s %20s %22s\n", "size", "group fetch med(ms)", "propagation med(ms)")
	gs, err := bench.AblationGroupSize(nil, 12, scale, seed)
	if err != nil {
		return err
	}
	for _, r := range gs {
		fmt.Printf("%6d %20.2f %22.2f\n", r.Size, r.GroupFetch.MedianMs, r.Propagation.MedianMs)
	}

	fmt.Println("\n== Ablation: cache capacity (LRU, §6.1) ==")
	fmt.Printf("%8s %10s\n", "limit", "hit rate")
	cs, err := bench.AblationCacheSize(nil, 150, scale, seed)
	if err != nil {
		return err
	}
	for _, r := range cs {
		fmt.Printf("%8d %9.1f%%\n", r.Limit, 100*r.HitRate)
	}
	return nil
}

// fanoutRun is one population point of the recorded fan-out A/B.
type fanoutRun struct {
	Subscribers   int                `json:"subscribers"`
	PerSubscriber bench.FanoutResult `json:"per_subscriber"`
	Sharded       bench.FanoutResult `json:"sharded"`
	// Speedup is sharded over per-subscriber on delivered-txs/s.
	Speedup float64 `json:"speedup"`
	// AllocRatio is per-subscriber over sharded on allocations per
	// delivered transaction (higher = more saved by sharing frames).
	AllocRatio float64 `json:"alloc_ratio"`
}

// runFanout records the interest-sharded vs per-subscriber push fan-out A/B
// (DESIGN.md §4e) to outPath. Acceptance: zero delivery violations in both
// modes and ≥5× delivered-txs/s for the sharded path at the largest
// population.
func runFanout(sizesCSV string, commits int, outPath string, seed int64, progress func(string)) error {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -fanout-sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)

	var runs []fanoutRun
	for _, size := range sizes {
		cfg := bench.FanoutConfig{Subscribers: size, Commits: commits, Seed: seed}
		cfg.PerSubscriber = true
		base, err := bench.RunFanout(cfg, progress)
		if err != nil {
			return err
		}
		cfg.PerSubscriber = false
		sharded, err := bench.RunFanout(cfg, progress)
		if err != nil {
			return err
		}
		run := fanoutRun{Subscribers: size, PerSubscriber: base, Sharded: sharded}
		if base.DeliveredPerSec > 0 {
			run.Speedup = sharded.DeliveredPerSec / base.DeliveredPerSec
		}
		if sharded.AllocsPerTx > 0 {
			run.AllocRatio = base.AllocsPerTx / sharded.AllocsPerTx
		}
		runs = append(runs, run)
	}

	fmt.Println("\n== Push fan-out A/B — per-subscriber vs interest-sharded (Zipf-skewed interest) ==")
	fmt.Printf("%10s %16s %16s %8s %12s %12s %8s %8s\n",
		"subs", "persub(tx/s)", "sharded(tx/s)", "speedup", "allocs/tx", "allocs/tx", "shards", "shared%")
	for _, r := range runs {
		sharedPct := 0.0
		if total := r.Sharded.FramesBuilt + r.Sharded.FramesShared; total > 0 {
			sharedPct = 100 * float64(r.Sharded.FramesShared) / float64(total)
		}
		fmt.Printf("%10d %16.0f %16.0f %7.1fx %12.1f %12.1f %8d %7.1f%%\n",
			r.Subscribers, r.PerSubscriber.DeliveredPerSec, r.Sharded.DeliveredPerSec,
			r.Speedup, r.PerSubscriber.AllocsPerTx, r.Sharded.AllocsPerTx,
			r.Sharded.Shards, sharedPct)
	}

	out := struct {
		Generated string `json:"generated"`
		Bench     string `json:"bench"`
		Config    struct {
			Commits int     `json:"commits"`
			Buckets int     `json:"buckets"`
			ZipfS   float64 `json:"zipf_s"`
			DCs     int     `json:"dcs"`
			K       int     `json:"k"`
		} `json:"config"`
		Runs []fanoutRun `json:"runs"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Bench:     "push fan-out A/B: Zipf-skewed interest, per-subscriber baseline vs interest-sharded (delivered txs/s until all interested subscribers received every commit)",
		Runs:      runs,
	}
	out.Config.Commits = commits
	out.Config.Buckets = 64
	out.Config.ZipfS = 1.2
	out.Config.DCs = 1
	out.Config.K = 1
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)

	for _, r := range runs {
		if v := r.PerSubscriber.Violations + r.Sharded.Violations; v > 0 {
			return fmt.Errorf("fanout: %d delivery violations at %d subscribers", v, r.Subscribers)
		}
	}
	if last := runs[len(runs)-1]; last.Speedup < 5 {
		return fmt.Errorf("fanout: sharded speedup %.2fx at %d subscribers, acceptance requires >=5x",
			last.Speedup, last.Subscribers)
	}
	return nil
}

// treeRun is one population point of the recorded tree-multicast A/B.
type treeRun struct {
	Subscribers int              `json:"subscribers"`
	Direct      bench.TreeResult `json:"direct_sharded"`
	Tree        bench.TreeResult `json:"tree"`
	// EgressReduction is direct over tree on DC-sent units (higher = more
	// DC egress absorbed by the relay layer).
	EgressReduction float64 `json:"egress_reduction"`
	// ThroughputRatio is tree over direct on delivered-txs/s; acceptance
	// requires >= 0.8 (within 20% of direct).
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// runTree records the tree-multicast vs direct-sharded push A/B (DESIGN.md
// §4g) to outPath. Acceptance: zero delivery violations in both modes, ≥5×
// fewer DC-sent units for tree mode at the largest population, and tree-mode
// delivered-txs/s within 20% of direct.
func runTree(sizesCSV string, commits, degree int, outPath string, seed int64, progress func(string)) error {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -tree-sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)

	// Simnet benches are wall-clock paced, so single runs are noisy; take
	// the best of two attempts per mode (slowdowns from machine load are
	// one-sided, violations are checked on every attempt).
	best := func(cfg bench.TreeConfig) (bench.TreeResult, error) {
		r1, err := bench.RunTree(cfg, progress)
		if err != nil {
			return r1, err
		}
		r2, err := bench.RunTree(cfg, progress)
		if err != nil {
			return r2, err
		}
		if r1.Violations+r2.Violations > 0 {
			r1.Violations += r2.Violations
			return r1, nil
		}
		if r2.DeliveredPerSec > r1.DeliveredPerSec {
			return r2, nil
		}
		return r1, nil
	}

	var runs []treeRun
	for _, size := range sizes {
		cfg := bench.TreeConfig{Subscribers: size, Commits: commits, Degree: degree, Seed: seed}
		cfg.Direct = true
		direct, err := best(cfg)
		if err != nil {
			return err
		}
		cfg.Direct = false
		tree, err := best(cfg)
		if err != nil {
			return err
		}
		run := treeRun{Subscribers: size, Direct: direct, Tree: tree}
		if tree.DCSentUnits > 0 {
			run.EgressReduction = float64(direct.DCSentUnits) / float64(tree.DCSentUnits)
		}
		if direct.DeliveredPerSec > 0 {
			run.ThroughputRatio = tree.DeliveredPerSec / direct.DeliveredPerSec
		}
		runs = append(runs, run)
	}

	fmt.Println("\n== Tree multicast A/B — direct-sharded vs subtree relays (Zipf-skewed interest) ==")
	fmt.Printf("%10s %14s %14s %9s %14s %12s %12s %8s\n",
		"subs", "direct(sent)", "tree(sent)", "reduct", "relay(sent)", "direct(tx/s)", "tree(tx/s)", "ratio")
	for _, r := range runs {
		fmt.Printf("%10d %14d %14d %8.1fx %14d %12.0f %12.0f %8.2f\n",
			r.Subscribers, r.Direct.DCSentUnits, r.Tree.DCSentUnits, r.EgressReduction,
			r.Tree.RelaySentUnits, r.Direct.DeliveredPerSec, r.Tree.DeliveredPerSec, r.ThroughputRatio)
	}

	out := struct {
		Generated string `json:"generated"`
		Bench     string `json:"bench"`
		Config    struct {
			Commits int     `json:"commits"`
			Buckets int     `json:"buckets"`
			ZipfS   float64 `json:"zipf_s"`
			Degree  int     `json:"degree"`
			DCs     int     `json:"dcs"`
			K       int     `json:"k"`
		} `json:"config"`
		Runs []treeRun `json:"runs"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Bench:     "tree multicast A/B: Zipf-skewed interest, direct-sharded baseline vs bounded-degree subtree relays (DC-sent units = every frame the DC put on the wire)",
		Runs:      runs,
	}
	out.Config.Commits = commits
	out.Config.Buckets = 64
	out.Config.ZipfS = 1.2
	out.Config.Degree = degree
	out.Config.DCs = 1
	out.Config.K = 1
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)

	for _, r := range runs {
		if v := r.Direct.Violations + r.Tree.Violations; v > 0 {
			return fmt.Errorf("tree: %d delivery violations at %d subscribers", v, r.Subscribers)
		}
	}
	last := runs[len(runs)-1]
	if last.EgressReduction < 5 {
		return fmt.Errorf("tree: DC egress reduction %.2fx at %d subscribers, acceptance requires >=5x",
			last.EgressReduction, last.Subscribers)
	}
	if last.ThroughputRatio < 0.8 {
		return fmt.Errorf("tree: delivered-txs/s ratio %.2f at %d subscribers, acceptance requires >=0.8",
			last.ThroughputRatio, last.Subscribers)
	}
	return nil
}

// partialRun is one bucket-universe point of the recorded partial-replication
// A/B.
type partialRun struct {
	Buckets int                 `json:"buckets"`
	Full    bench.PartialResult `json:"full"`
	Partial bench.PartialResult `json:"partial"`
	// WANReduction is full over partial on simnet sent units (higher = more
	// replication payload replaced by metadata stubs).
	WANReduction float64 `json:"wan_reduction"`
	// ThroughputRatio is partial over full on commit tx/s; acceptance
	// requires >= 0.9 (within 10% of full replication).
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// runPartial records the full-replication vs interest-scoped (partial)
// replication A/B (DESIGN.md §4h) to outPath. Acceptance: zero convergence
// violations in both modes, ≥5× fewer WAN units for partial mode at the
// largest bucket universe, per-DC residency proportional to the interest
// share, and partial-mode tx/s within 10% of full. With -fullrepl only the
// full baseline runs (no A/B record, no acceptance checks).
func runPartial(sizesCSV string, commits int, outPath string, fullOnly bool, seed int64, progress func(string)) error {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -partial-buckets entry %q", f)
		}
		sizes = append(sizes, n)
	}
	sort.Ints(sizes)

	// Simnet benches are wall-clock paced, so single runs are noisy; take
	// the best of two attempts per mode (slowdowns from machine load are
	// one-sided, violations are checked on every attempt).
	best := func(cfg bench.PartialConfig) (bench.PartialResult, error) {
		r1, err := bench.RunPartial(cfg, progress)
		if err != nil {
			return r1, err
		}
		r2, err := bench.RunPartial(cfg, progress)
		if err != nil {
			return r2, err
		}
		if r1.Violations+r2.Violations > 0 {
			r1.Violations += r2.Violations
			return r1, nil
		}
		if r2.TxPerSec > r1.TxPerSec {
			return r2, nil
		}
		return r1, nil
	}

	if fullOnly {
		fmt.Println("\n== Full-replication baseline only (-fullrepl) ==")
		for _, size := range sizes {
			r, err := best(bench.PartialConfig{Buckets: size, Commits: commits, Full: true, Seed: seed})
			if err != nil {
				return err
			}
			fmt.Printf("%6d buckets: %d WAN units, %.0f tx/s, %d violations\n",
				size, r.WANUnits, r.TxPerSec, r.Violations)
		}
		return nil
	}

	var runs []partialRun
	for _, size := range sizes {
		cfg := bench.PartialConfig{Buckets: size, Commits: commits, Seed: seed}
		cfg.Full = true
		full, err := best(cfg)
		if err != nil {
			return err
		}
		cfg.Full = false
		part, err := best(cfg)
		if err != nil {
			return err
		}
		run := partialRun{Buckets: size, Full: full, Partial: part}
		if part.WANUnits > 0 {
			run.WANReduction = float64(full.WANUnits) / float64(part.WANUnits)
		}
		if full.TxPerSec > 0 {
			run.ThroughputRatio = part.TxPerSec / full.TxPerSec
		}
		runs = append(runs, run)
	}

	fmt.Println("\n== Partial replication A/B — full mesh vs interest-scoped (3 DCs, Zipf interest) ==")
	fmt.Printf("%8s %12s %12s %9s %10s %10s %12s %12s %8s\n",
		"buckets", "full(wan)", "part(wan)", "reduct", "stubs", "resident", "full(tx/s)", "part(tx/s)", "ratio")
	for _, r := range runs {
		resident := 0
		for _, s := range r.Partial.PerDC {
			resident += s.ResidentBuckets
		}
		fmt.Printf("%8d %12d %12d %8.1fx %10d %10d %12.0f %12.0f %8.2f\n",
			r.Buckets, r.Full.WANUnits, r.Partial.WANUnits, r.WANReduction,
			r.Partial.ReplStubTxs, resident, r.Full.TxPerSec, r.Partial.TxPerSec, r.ThroughputRatio)
	}

	out := struct {
		Generated string `json:"generated"`
		Bench     string `json:"bench"`
		Config    struct {
			Commits int     `json:"commits"`
			ZipfS   float64 `json:"zipf_s"`
			DCs     int     `json:"dcs"`
			K       int     `json:"k"`
		} `json:"config"`
		Runs []partialRun `json:"runs"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Bench:     "partial replication A/B: 3 DCs, shared Zipf hot set + per-DC cold thirds, full mesh baseline vs interest-scoped stubs (WAN units = payload txs the simnet carried; stub-only frames count 1)",
		Runs:      runs,
	}
	out.Config.Commits = commits
	out.Config.ZipfS = 1.2
	out.Config.DCs = 3
	out.Config.K = 2
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", outPath)

	for _, r := range runs {
		if v := r.Full.Violations + r.Partial.Violations; v > 0 {
			return fmt.Errorf("partial: %d convergence violations at %d buckets", v, r.Buckets)
		}
	}
	last := runs[len(runs)-1]
	if last.WANReduction < 5 {
		return fmt.Errorf("partial: WAN-unit reduction %.2fx at %d buckets, acceptance requires >=5x",
			last.WANReduction, last.Buckets)
	}
	if last.ThroughputRatio < 0.9 {
		return fmt.Errorf("partial: tx/s ratio %.2f at %d buckets, acceptance requires >=0.9",
			last.ThroughputRatio, last.Buckets)
	}
	// Residency proportionality: each DC's resident bucket count must stay
	// within 2× its interest set (on-demand backfills can add a few).
	for _, s := range last.Partial.PerDC {
		if s.ResidentBuckets > 2*s.InterestBuckets {
			return fmt.Errorf("partial: dc%d resident %d buckets vs %d interest at %d buckets universe",
				s.DC, s.ResidentBuckets, s.InterestBuckets, last.Buckets)
		}
	}
	return nil
}

// clientSweep builds the exponential load axis 4, 8, …, max.
func clientSweep(max int) []int {
	var out []int
	for c := 4; c <= max; c *= 2 {
		out = append(out, c)
	}
	return out
}

func printFig4(pts []bench.Fig4Point, obsDump bool) {
	fmt.Println("\n== Figure 4 — performance of Colony (throughput vs response time, log-log in the paper) ==")
	fmt.Printf("%-18s %8s %14s %10s %10s %10s %7s %7s %7s\n",
		"config", "clients", "tput(txn/s)", "mean(ms)", "p95(ms)", "p99(ms)", "hit%", "grp%", "dc%")
	for _, p := range pts {
		fmt.Printf("%-18s %8d %14.1f %10.2f %10.2f %10.2f %6.1f%% %6.1f%% %6.1f%%\n",
			p.Label(), p.Clients, p.ThroughputTx,
			p.Latency.MeanMs, p.Latency.P95Ms, p.Latency.P99Ms,
			100*p.Hits.Cache, 100*p.Hits.Group, 100*p.Hits.DC)
	}
	fmt.Println("\ncsv: config,clients,throughput_txs,mean_ms,p95_ms,p99_ms,cache,group,dc")
	for _, p := range pts {
		fmt.Printf("csv: %s,%d,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			p.Label(), p.Clients, p.ThroughputTx,
			p.Latency.MeanMs, p.Latency.P95Ms, p.Latency.P99Ms,
			p.Hits.Cache, p.Hits.Group, p.Hits.DC)
	}
	if !obsDump {
		return
	}
	// Per-run instrumentation snapshots — the same figures colony-server
	// serves at /metrics, captured once per deployment after the run.
	fmt.Println("\n== Figure 4 — per-run instrumentation snapshots ==")
	for _, p := range pts {
		fmt.Printf("\nobs[%s, %d clients]:\n", p.Label(), p.Clients)
		printIndented(p.Obs.String())
	}
}

// printIndented writes a multi-line dump with a two-space indent.
func printIndented(s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Printf("  %s\n", line)
	}
}

func printTimeline(title string, res *bench.TimelineResult) {
	fmt.Printf("\n== %s ==\n", title)
	fmt.Printf("events: first at %v, second at %v (model time)\n", res.Disconnect, res.Reconnect)
	buckets := bench.Bucketize(res.Samples)
	srcs := []string{edge.SourceCache.String(), edge.SourceGroup.String(), edge.SourceDC.String()}
	fmt.Printf("%6s", "t(s)")
	for _, s := range srcs {
		fmt.Printf(" %12s", s+"(ms)")
	}
	fmt.Printf(" %8s\n", "samples")
	for _, b := range buckets {
		fmt.Printf("%6d", b.Second)
		for _, s := range srcs {
			if st, ok := b.BySrc[s]; ok && st.Count > 0 {
				fmt.Printf(" %12.2f", st.MeanMs)
			} else {
				fmt.Printf(" %12s", "-")
			}
		}
		fmt.Printf(" %8d\n", b.Samples)
	}
	if len(res.FocusUsers) > 0 {
		fmt.Printf("focus user(s): %v\n", res.FocusUsers)
		var focus []bench.Sample
		for _, s := range res.Samples {
			for _, u := range res.FocusUsers {
				if s.User == u {
					focus = append(focus, s)
				}
			}
		}
		sort.Slice(focus, func(i, j int) bool { return focus[i].At < focus[j].At })
		fmt.Println("csv: t_s,latency_ms,source (focus user)")
		for _, s := range focus {
			fmt.Printf("csv: %.2f,%.3f,%s\n",
				s.At.Seconds(), float64(s.Latency)/float64(time.Millisecond), s.Source)
		}
	}
}

func printClaims(c bench.Claims) {
	fmt.Println("\n== Headline claims (§1, §7.3) — paper vs measured ==")
	row := func(name, paper string, measured float64, unit string) {
		fmt.Printf("%-46s %10s %12.2f%s\n", name, paper, measured, unit)
	}
	row("local caching: throughput gain vs cloud", "1.4x", c.ThroughputGainSwiftCloud, "x")
	row("group caching: throughput gain vs cloud", "1.6x", c.ThroughputGainColony, "x")
	row("local caching: response-time gain vs cloud", "8x", c.LatencyGainSwiftCloud, "x")
	row("group caching: response-time gain vs cloud", "20x", c.LatencyGainColony, "x")
	row("1->3 DCs: max throughput gain (no cache)", "+40%", (c.AntidoteDC3Gain-1)*100, "%")
	row("SwiftCloud local-cache hit rate", "90%", c.SwiftCloudHitRate*100, "%")
	row("Colony combined cache hit rate", "95%", c.ColonyCombinedHitRate*100, "%")
	row("offline/online latency ratio (hits)", "1.0", c.OfflineLatencyRatio, "")
}
